#include "distributed/dynamic_runner.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags_util.h"
#include "core/executor.h"
#include "core/match_consumer.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/incremental.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"
#include "storage/tcp_transport.h"
#include "storage/transport.h"
#include "storage/versioned_store.h"

namespace benu {
namespace {

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

EdgeSet EdgesOf(const Graph& g) {
  const auto edges = g.Edges();
  return EdgeSet(edges.begin(), edges.end());
}

std::pair<VertexId, VertexId> Norm(VertexId u, VertexId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

// Reference enumeration: full plan over an in-memory graph built from the
// current edge set — completely independent of the versioned store and
// the incremental machinery under test.
std::vector<std::vector<VertexId>> ReferenceMatches(const Graph& pattern,
                                                    size_t num_vertices,
                                                    const EdgeSet& edges) {
  Graph g = std::move(Graph::FromEdges(
                          num_vertices, {edges.begin(), edges.end()}))
                .value();
  ExecutionPlan plan =
      std::move(GenerateRawPlan(pattern, GreedyMatchingOrder(pattern),
                                ComputeSymmetryBreakingConstraints(pattern)))
          .value();
  DirectAdjacencyProvider provider(&g);
  CollectingConsumer consumer(plan);
  auto executor = std::move(PlanExecutor::Create(&plan, &provider, nullptr))
                      .value();
  for (VertexId v = 0; v < static_cast<VertexId>(num_vertices); ++v) {
    SearchTask task;
    task.start = v;
    executor->RunTask(task, &consumer);
  }
  return consumer.Sorted();
}

// A deterministic mixed insert/delete stream: some ops target existing
// edges (deletes), some absent pairs (inserts), some are deliberate
// no-ops or insert+delete churn inside one batch.
std::vector<std::vector<EdgeDelta>> MakeStream(const Graph& base,
                                               size_t num_epochs,
                                               size_t batch, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const size_t n = base.NumVertices();
  EdgeSet present = EdgesOf(base);
  std::vector<std::vector<EdgeDelta>> stream;
  for (size_t e = 0; e < num_epochs; ++e) {
    std::vector<EdgeDelta> ops;
    while (ops.size() < batch) {
      const VertexId u = static_cast<VertexId>(rng() % n);
      const VertexId v = static_cast<VertexId>(rng() % n);
      if (u == v) continue;
      const auto key = Norm(u, v);
      const bool exists = present.count(key) != 0;
      const uint64_t roll = rng() % 10;
      if (exists && roll < 4) {
        ops.push_back({u, v, /*insert=*/false});
        present.erase(key);
      } else if (!exists && roll < 8) {
        ops.push_back({u, v, /*insert=*/true});
        present.insert(key);
        if (roll == 7 && ops.size() < batch) {
          // Same-batch churn: insert then delete must cancel to a no-op.
          ops.push_back({v, u, /*insert=*/false});
          present.erase(key);
        }
      } else {
        // Deliberate no-op: re-insert a present edge / delete an absent
        // one; canonicalization must drop it.
        ops.push_back({u, v, exists});
      }
    }
    stream.push_back(std::move(ops));
  }
  return stream;
}

void RunExactnessLoop(std::shared_ptr<Transport> transport,
                      const Graph& base, const Graph& pattern,
                      size_t num_epochs, size_t batch, uint64_t seed) {
  DynamicRunnerOptions options;
  options.track_matches = true;
  auto runner =
      std::move(DynamicRunner::Create(std::move(transport), pattern, options))
          .value();

  EdgeSet edges = EdgesOf(base);
  auto baseline = runner->RunBaseline();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(*baseline,
            ReferenceMatches(pattern, base.NumVertices(), edges).size());

  const auto stream = MakeStream(base, num_epochs, batch, seed);
  for (size_t e = 0; e < stream.size(); ++e) {
    auto report = runner->ApplyBatch(stream[e]);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->epoch, e + 1);
    for (const EdgeDelta& op : stream[e]) {
      if (op.insert) {
        edges.insert(Norm(op.u, op.v));
      } else {
        edges.erase(Norm(op.u, op.v));
      }
    }
    const auto expected =
        ReferenceMatches(pattern, base.NumVertices(), edges);
    // Multiset bit-identical at every epoch, and the count consistent.
    EXPECT_EQ(runner->TrackedMatches(), expected)
        << "epoch " << e + 1 << " diverged";
    EXPECT_EQ(runner->total_matches(), expected.size());
    // The maintained count also agrees with a fresh recount through the
    // same store (epoch snapshot reads).
    auto recount = runner->Recount();
    ASSERT_TRUE(recount.ok());
    EXPECT_EQ(*recount, runner->total_matches());
  }
}

// --- incremental plan generation -------------------------------------

TEST(IncrementalPlanTest, OnePlanPerCanonicalEdge) {
  Graph q5 = std::move(GetPattern("q5")).value();
  auto set = GenerateIncrementalPlans(q5);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->plans.size(), q5.NumEdges());
  EXPECT_TRUE(std::is_sorted(set->edges.begin(), set->edges.end()));
  for (size_t i = 0; i < set->plans.size(); ++i) {
    const IncrementalPlan& inc = set->plans[i];
    EXPECT_EQ(inc.edge_index, i);
    EXPECT_LT(inc.anchor_u, inc.anchor_v);
    ASSERT_GE(inc.plan.matching_order.size(), 2u);
    // The matching order starts with the anchored edge, so seeding pins
    // (f(anchor_u), f(anchor_v)) to the delta edge.
    EXPECT_EQ(inc.plan.matching_order[0], inc.anchor_u);
    EXPECT_EQ(inc.plan.matching_order[1], inc.anchor_v);
    EXPECT_FALSE(inc.plan.compressed);
    std::string error;
    EXPECT_TRUE(ValidatePlan(inc.plan, &error)) << error;
  }
}

TEST(IncrementalPlanTest, RejectsDegeneratePatterns) {
  Graph lone = std::move(Graph::FromEdges(1, {})).value();
  EXPECT_FALSE(GenerateIncrementalPlans(lone).ok());
  Graph disconnected = std::move(Graph::FromEdges(4, {{0, 1}, {2, 3}})).value();
  EXPECT_FALSE(GenerateIncrementalPlans(disconnected).ok());
}

TEST(IncrementalPlanTest, GreedyOrderIsConnectedAndDeterministic) {
  Graph q9 = std::move(GetPattern("q9")).value();
  const auto order = GreedyMatchingOrder(q9);
  ASSERT_EQ(order.size(), q9.NumVertices());
  for (size_t i = 1; i < order.size(); ++i) {
    bool connected = false;
    for (size_t j = 0; j < i && !connected; ++j) {
      connected = q9.HasEdge(order[i], order[j]);
    }
    EXPECT_TRUE(connected) << "vertex " << order[i] << " joins disconnected";
  }
  EXPECT_EQ(order, GreedyMatchingOrder(q9));
}

// --- executor seeding --------------------------------------------------

TEST(SeededTaskTest, SeedPinsSecondVertex) {
  // Path graph 0-1-2-3 plus edge 1-3: count wedges (q1-like path of 3).
  Graph g = std::move(Graph::FromEdges(
                          4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}}))
                .value();
  Graph pattern = std::move(Graph::FromEdges(3, {{0, 1}, {1, 2}})).value();
  ExecutionPlan plan =
      std::move(GenerateRawPlan(pattern, {0, 1, 2}, {})).value();
  DirectAdjacencyProvider provider(&g);
  auto executor = std::move(PlanExecutor::Create(&plan, &provider, nullptr))
                      .value();

  // Unseeded from start=0: f(0)=0 forces f(1)=1, f(2) in {2, 3}.
  CollectingConsumer all(plan);
  SearchTask unseeded;
  unseeded.start = 0;
  executor->RunTask(unseeded, &all);
  ASSERT_EQ(all.matches().size(), 2u);

  // Seeded (0, 1): same matches — the seed is the only candidate anyway.
  CollectingConsumer seeded(plan);
  SearchTask task;
  task.start = 0;
  task.seed_second = 1;
  executor->RunTask(task, &seeded);
  EXPECT_EQ(seeded.Sorted(), all.Sorted());

  // Seeded with a non-neighbor: nothing binds, nothing reported.
  CollectingConsumer none(plan);
  task.seed_second = 2;
  executor->RunTask(task, &none);
  EXPECT_TRUE(none.matches().empty());

  // Seed takes precedence over subtask slicing: a slice that would
  // exclude the seed must still enumerate it.
  CollectingConsumer sliced(plan);
  SearchTask slice;
  slice.start = 1;  // candidates of f(1)=... start has 3 neighbors
  slice.seed_second = 3;
  slice.subtask_index = 0;
  slice.num_subtasks = 4;
  executor->RunTask(slice, &sliced);
  for (const auto& match : sliced.matches()) {
    EXPECT_EQ(match[1], 3u);
  }
  EXPECT_FALSE(sliced.matches().empty());
}

// --- min-index uniqueness filter --------------------------------------

TEST(DeltaMatchFilterTest, RejectsMatchesOwnedByEarlierPlans) {
  Graph triangle = std::move(GetPattern("triangle")).value();
  auto set = std::move(GenerateIncrementalPlans(triangle)).value();
  ASSERT_EQ(set.edges.size(), 3u);

  // Patch contains the data edges {0,1} and {1,2}; pattern edges map
  // straight through for the identity match {0,1,2}.
  std::vector<EdgeDelta> ops = {{0, 1, true}, {1, 2, true}};
  EdgePatch patch(ops);

  CollectingConsumer sink0(set.plans[0].plan);
  DeltaMatchFilter f0(&set, 0, &patch, &sink0);
  f0.OnMatch({0, 1, 2});
  EXPECT_EQ(f0.accepted(), 1u);  // no earlier edge: plan 0 owns it

  // Plan for edge (1,2) — canonical index 2 in a triangle ((0,1) < (0,2)
  // < (1,2)): pattern edge (0,1) maps into the patch, so the match
  // belongs to plan 0 and must be rejected here.
  CollectingConsumer sink2(set.plans[2].plan);
  DeltaMatchFilter f2(&set, 2, &patch, &sink2);
  f2.OnMatch({0, 1, 2});
  EXPECT_EQ(f2.accepted(), 0u);
  EXPECT_EQ(f2.rejected(), 1u);

  // A match whose earlier edges avoid the patch passes.
  f2.OnMatch({3, 1, 2});  // edge (0,1) -> {3,1}: not in patch
  EXPECT_EQ(f2.accepted(), 1u);
}

// --- versioned store ---------------------------------------------------

TEST(VersionedStoreTest, CanonicalizeDropsNoopsAndChurn) {
  Graph g = std::move(Graph::FromEdges(4, {{0, 1}, {1, 2}})).value();
  VersionedAdjacencyStore store(MakeSimulatedTransport(g, 2));
  std::vector<EdgeDelta> ops = {
      {0, 1, true},   // already present: no-op
      {2, 3, false},  // absent: no-op
      {0, 3, true},   // net insert
      {3, 0, false},  // cancels the insert
      {0, 2, true},   // net insert (normalized)
      {1, 2, false},  // net remove
      {2, 2, true},   // self loop: dropped
  };
  const EpochDelta delta = store.Canonicalize(ops);
  EXPECT_EQ(delta.epoch, 1u);
  EXPECT_EQ(delta.raw_ops, ops.size());
  ASSERT_EQ(delta.inserted.size(), 1u);
  EXPECT_EQ(delta.inserted[0].u, 0u);
  EXPECT_EQ(delta.inserted[0].v, 2u);
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0].u, 1u);
  EXPECT_EQ(delta.removed[0].v, 2u);
  EXPECT_EQ(delta.touched, (std::vector<VertexId>{0, 1, 2}));
}

TEST(VersionedStoreTest, SnapshotReadsComposeOverlay) {
  Graph g = std::move(Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}})).value();
  VersionedAdjacencyStore store(MakeSimulatedTransport(g, 2));
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_TRUE(store.EdgeExists(1, 2));

  const EpochDelta delta =
      store.Canonicalize(std::vector<EdgeDelta>{{0, 3, true}, {1, 2, false}});
  EXPECT_EQ(store.Apply(delta), 1u);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_TRUE(store.EdgeExists(0, 3));
  EXPECT_FALSE(store.EdgeExists(1, 2));
  EXPECT_TRUE(store.EdgeExists(0, 1));  // untouched

  EXPECT_EQ(*store.GetAdjacency(0).Materialize(), (VertexSet{1, 3}));
  EXPECT_EQ(*store.GetAdjacency(1).Materialize(), (VertexSet{0}));
  EXPECT_EQ(*store.GetAdjacency(3).Materialize(), (VertexSet{0, 2}));

  auto batch = store.GetAdjacencyBatch(std::vector<VertexId>{0, 1, 2, 3});
  ASSERT_EQ(batch.values.size(), 4u);
  EXPECT_EQ(*batch.values[0].Materialize(), (VertexSet{1, 3}));
  EXPECT_EQ(*batch.values[2].Materialize(), (VertexSet{3}));

  // Applying a delta with a stale epoch is a programming error upstream;
  // Canonicalize against the new snapshot drops what is now a no-op.
  const EpochDelta again =
      store.Canonicalize(std::vector<EdgeDelta>{{0, 3, true}});
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(again.epoch, 2u);
}

// --- end-to-end exactness ---------------------------------------------

struct DynamicCase {
  const char* graph_spec;
  const char* pattern;
  uint64_t seed;
};

class DynamicExactnessTest : public ::testing::TestWithParam<DynamicCase> {};

TEST_P(DynamicExactnessTest, SimTransport) {
  const DynamicCase& c = GetParam();
  Graph base = std::move(GenerateFromSpec(c.graph_spec)).value();
  Graph pattern = std::move(GetPattern(c.pattern)).value();
  RunExactnessLoop(MakeSimulatedTransport(base, 4), base, pattern,
                   /*num_epochs=*/5, /*batch=*/8, c.seed);
}

TEST_P(DynamicExactnessTest, LoopbackTransport) {
  const DynamicCase& c = GetParam();
  Graph base = std::move(GenerateFromSpec(c.graph_spec)).value();
  Graph pattern = std::move(GetPattern(c.pattern)).value();
  RunExactnessLoop(MakeLoopbackTransport(base, 4), base, pattern,
                   /*num_epochs=*/5, /*batch=*/8, c.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DynamicExactnessTest,
    ::testing::Values(DynamicCase{"er:40,100,7", "q5", 11},
                      DynamicCase{"ba:40,3,5", "q9", 13},
                      DynamicCase{"er:32,90,9", "clique4", 17}),
    [](const ::testing::TestParamInfo<DynamicCase>& info) {
      return std::string(info.param.pattern) + "_" +
             std::to_string(info.index);
    });

TEST(DynamicExactnessTest, TcpTransport) {
  // Real sockets against spawned benu_kv_server processes, one of them a
  // pre-delta (--deltas=0) peer: the capability downgrade must not change
  // a single match.
  Graph base = std::move(GenerateFromSpec("er:32,80,3")).value();
  Graph pattern = std::move(GetPattern("q5")).value();

  flags::KvServerSpawnOptions opts;
  opts.graph_spec = "er:32,80,3";
  opts.partitions = 4;
  opts.servers = 2;
  opts.relabel = false;  // dynamic runs use raw ids as the total order
  std::vector<flags::ServerProcess> servers;
  opts.index = 0;
  opts.support_deltas = true;
  servers.push_back(flags::SpawnKvServer(BENU_KV_SERVER_BIN, opts));
  opts.index = 1;
  opts.support_deltas = false;  // the v2-era peer
  servers.push_back(flags::SpawnKvServer(BENU_KV_SERVER_BIN, opts));

  std::vector<Endpoint> endpoints;
  for (const auto& s : servers) {
    endpoints.push_back({"127.0.0.1", s.port});
  }
  auto transport = ConnectTcpTransport(endpoints);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();

  // Every epoch's Apply replicates the delta mid-stream: the capable
  // server attests it, the v2 peer is skipped — results must be exact
  // either way since snapshots are composed client-side.
  RunExactnessLoop(*transport, base, pattern, /*num_epochs=*/4,
                   /*batch=*/6, 23);

  // The mixed fleet reports exactly one downgraded peer per delta push.
  // The capable server attested epochs 1..4 during the loop; advancing
  // it to 5 directly probes the per-server capability split.
  auto push = (*transport)->AdvanceEpoch(5);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  EXPECT_EQ(push->acked_servers, 1u);
  EXPECT_EQ(push->downgraded_servers, 1u);

  // A reconnecting client that matches the servers' attested state is
  // accepted; the fleet stays reachable after the delta stream.
  auto transport2 = ConnectTcpTransport(endpoints);
  ASSERT_TRUE(transport2.ok()) << transport2.status().ToString();
  EXPECT_TRUE((*transport2)->Fetch(0).ok());
  flags::KillServers(servers);
}

// --- deletion retraction edge case ------------------------------------

TEST(DynamicRetractionTest, OneDeletedEdgeRetractsManyMatches) {
  // K4 plus a pendant: deleting the hub edge {0,1} retracts every
  // triangle using it (exactly two in K4), in one epoch.
  Graph base = std::move(Graph::FromEdges(
                             5, {{0, 1}, {0, 2}, {0, 3}, {1, 2},
                                 {1, 3}, {2, 3}, {3, 4}}))
                   .value();
  Graph triangle = std::move(GetPattern("triangle")).value();
  DynamicRunnerOptions options;
  options.track_matches = true;
  auto runner = std::move(DynamicRunner::Create(
                              MakeSimulatedTransport(base, 2), triangle,
                              options))
                    .value();
  ASSERT_EQ(std::move(runner->RunBaseline()).value(), 4u);  // C(4,3)

  auto report =
      runner->ApplyBatch(std::vector<EdgeDelta>{{0, 1, false}});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->retracted, 2u);
  EXPECT_EQ(report->added, 0u);
  EXPECT_EQ(report->total, 2u);
  EXPECT_EQ(runner->TrackedMatches(),
            ReferenceMatches(triangle, 5,
                             EdgeSet{{0, 2}, {0, 3}, {1, 2}, {1, 3},
                                     {2, 3}, {3, 4}}));

  // Re-inserting restores exactly what was lost.
  report = runner->ApplyBatch(std::vector<EdgeDelta>{{1, 0, true}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->added, 2u);
  EXPECT_EQ(report->retracted, 0u);
  EXPECT_EQ(report->total, 4u);
}

}  // namespace
}  // namespace benu
