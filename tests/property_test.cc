#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "baselines/bruteforce.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "plan/vcbc.h"

namespace benu {
namespace {

// ---------------------------------------------------------------------------
// Property: for every catalog pattern × several random data graphs, the
// full BENU stack (plan search + optimizations + VCBC + cluster execution
// + caches + task splitting) produces the oracle's subgraph count.
// ---------------------------------------------------------------------------

using PatternGraphCase = std::tuple<std::string, int>;

class EndToEndProperty : public ::testing::TestWithParam<PatternGraphCase> {};

TEST_P(EndToEndProperty, BenuEqualsOracle) {
  const auto& [pattern_name, graph_kind] = GetParam();
  StatusOr<Graph> data = Status::Internal("unset");
  switch (graph_kind) {
    case 0:
      data = GenerateErdosRenyi(70, 280, 900 + graph_kind);
      break;
    case 1:
      data = GenerateBarabasiAlbert(120, 4, 901);
      break;
    case 2:
      data = GenerateBarabasiAlbert(80, 7, 902);  // denser hubs
      break;
  }
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern(pattern_name)).value();
  auto expected = BruteForceCountSubgraphs(*data, p);
  ASSERT_TRUE(expected.ok());

  BenuOptions options;
  options.cluster.num_workers = 2;
  options.cluster.threads_per_worker = 3;
  options.cluster.task_split_threshold = 10;
  options.cluster.db_cache_bytes = 1 << 16;  // small: force evictions
  options.plan.apply_vcbc = true;
  auto result = RunBenu(*data, p, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.total_matches, *expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, EndToEndProperty,
    ::testing::Combine(::testing::Values("triangle", "square", "diamond",
                                         "clique4", "clique5", "q1", "q2",
                                         "q3", "q4", "q5", "q6", "q7", "q8",
                                         "q9"),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<PatternGraphCase>& info) {
      return std::get<0>(info.param) + "_g" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Property: every matching order yields the same match count once the
// plan machinery (generation + optimization + compression) is applied.
// ---------------------------------------------------------------------------

class MatchingOrderProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(MatchingOrderProperty, AllOrdersAgree) {
  Graph p = std::move(GetPattern(GetParam())).value();
  auto data = GenerateErdosRenyi(40, 160, 77);
  ASSERT_TRUE(data.ok());
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto expected = BruteForceCount(*data, p, cs);
  ASSERT_TRUE(expected.ok());

  std::vector<VertexId> order(p.NumVertices());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<VertexId>(i);
  }
  int tried = 0;
  do {
    auto plan = GenerateRawPlan(p, order, cs);
    ASSERT_TRUE(plan.ok());
    OptimizePlan(&plan.value());
    ClusterConfig config;
    config.num_workers = 1;
    config.threads_per_worker = 1;
    ClusterSimulator cluster(*data, config);
    auto run = cluster.Run(*plan);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->total_matches, *expected)
        << GetParam() << " order starting u" << order[0] + 1;
    ++tried;
  } while (std::next_permutation(order.begin(), order.end()) && tried < 12);
}

INSTANTIATE_TEST_SUITE_P(Orders, MatchingOrderProperty,
                         ::testing::Values("triangle", "square", "q1", "q3",
                                           "q5"));

// ---------------------------------------------------------------------------
// Property: cache capacity never affects counts, only communication.
// ---------------------------------------------------------------------------

class CacheCapacityProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CacheCapacityProperty, CapacityIsSemanticallyInvisible) {
  auto raw = GenerateBarabasiAlbert(150, 5, 55);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  auto oracle = BruteForceCountSubgraphs(data, p);
  ASSERT_TRUE(oracle.ok());

  ClusterConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.db_cache_bytes = GetParam();
  ClusterSimulator cluster(data, config);
  auto result = cluster.Run(plan->plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, *oracle);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityProperty,
                         ::testing::Values(0, 1024, 8192, 1 << 20));

// ---------------------------------------------------------------------------
// Property: task-splitting thresholds never affect counts.
// ---------------------------------------------------------------------------

class TaskSplitProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TaskSplitProperty, ThresholdIsSemanticallyInvisible) {
  auto raw = GenerateBarabasiAlbert(150, 5, 66);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q3")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  auto oracle = BruteForceCountSubgraphs(data, p);
  ASSERT_TRUE(oracle.ok());

  ClusterConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 2;
  config.task_split_threshold = GetParam();
  ClusterSimulator cluster(data, config);
  auto result = cluster.Run(plan->plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, *oracle);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TaskSplitProperty,
                         ::testing::Values(0u, 2u, 5u, 50u, 1000u));

}  // namespace
}  // namespace benu
