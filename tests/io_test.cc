#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace benu {
namespace {

TEST(ParseEdgeListTest, BasicParse) {
  auto g = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST(ParseEdgeListTest, CommentsAndBlankLinesSkipped) {
  auto g = ParseEdgeList("# SNAP header\n% matrix market\n\n0 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(ParseEdgeListTest, SparseIdsAreCompacted) {
  auto g = ParseEdgeList("1000000 2000000\n2000000 42\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(ParseEdgeListTest, SelfLoopsDropped) {
  auto g = ParseEdgeList("5 5\n5 6\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(ParseEdgeListTest, MalformedLineFails) {
  auto g = ParseEdgeList("0 1\nbogus\n");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(ParseEdgeListTest, DuplicateEdgesCollapse) {
  auto g = ParseEdgeList("0 1\n1 0\n0 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(FileRoundTripTest, SaveAndLoad) {
  auto g = ParseEdgeList("0 1\n1 2\n2 3\n3 0\n0 2\n");
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/benu_io_test.edges";
  ASSERT_TRUE(SaveEdgeListFile(*g, path).ok());
  auto loaded = LoadEdgeListFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), g->NumVertices());
  EXPECT_EQ(loaded->NumEdges(), g->NumEdges());
  std::remove(path.c_str());
}

TEST(SaveEdgeListFileTest, UnwritablePathFails) {
  Graph g = std::move(ParseEdgeList("0 1\n")).value();
  Status st = SaveEdgeListFile(g, "/nonexistent/dir/out.edges");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(ParseEdgeListTest, TrailingTokensIgnoredPerLine) {
  // SNAP files sometimes carry weights/timestamps in extra columns.
  auto g = ParseEdgeList("0 1 17 2009\n1 2 3 2010\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(LoadEdgeListFileTest, MissingFileFails) {
  auto g = LoadEdgeListFile("/nonexistent/benu.edges");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace benu
