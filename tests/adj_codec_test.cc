// Differential and fuzz suite for the delta+varint adjacency codec:
// round-trips must be byte-exact, the SIMD and scalar decoders must
// produce identical values (run twice by ctest: adj_codec_test and
// adj_codec_test_scalar with BENU_DISABLE_SIMD=1), Validate must reject
// every malformed stream without crashing (the suite is also wired into
// the ASan/UBSan CI job), and the fused encoded-intersect kernels must
// match scalar decode-then-intersect bit for bit.

#include "graph/adj_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "common/rng.h"
#include "graph/simd_intersect.h"
#include "graph/vertex_set.h"

namespace benu {
namespace {

VertexSet RandomSorted(Rng* rng, size_t size, uint64_t universe) {
  VertexSet s;
  s.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    s.push_back(static_cast<VertexId>(rng->NextBounded(universe)));
  }
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

class SimdStateGuard {
 public:
  SimdStateGuard() : was_enabled_(simd::SimdEnabled()) {}
  ~SimdStateGuard() { simd::SetSimdEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

TEST(AdjCodecTest, EncodesKnownStreams) {
  codec::EncodedSet enc;
  codec::Encode(VertexSetView(), &enc);
  EXPECT_EQ(enc.count, 0u);
  EXPECT_TRUE(enc.bytes.empty());

  // {0} stores the shifted first entry 0 + 1 = 1 as a single byte.
  VertexSet zero = {0};
  codec::Encode(zero, &enc);
  ASSERT_EQ(enc.bytes, std::vector<uint8_t>({0x01}));

  // {2, 5, 6}: first varint 3 (=2+1), then deltas 3 and 1.
  VertexSet small = {2, 5, 6};
  codec::Encode(small, &enc);
  EXPECT_EQ(enc.count, 3u);
  EXPECT_EQ(enc.bytes, std::vector<uint8_t>({0x03, 0x03, 0x01}));

  // A delta of 300 = 0b10'0101100 needs two bytes: 0xAC 0x02.
  VertexSet wide = {10, 310};
  codec::Encode(wide, &enc);
  EXPECT_EQ(enc.bytes, std::vector<uint8_t>({0x0B, 0xAC, 0x02}));
}

TEST(AdjCodecTest, RoundTripsRandomSetsByteExact) {
  Rng rng(20260808);
  const size_t sizes[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64,
                          100, 255, 256, 257, 1000, 4096};
  for (size_t size : sizes) {
    for (uint64_t universe :
         {uint64_t{4}, uint64_t{1} << 10, uint64_t{1} << 20,
          uint64_t{1} << 31}) {
      VertexSet original = RandomSorted(&rng, size, universe);
      codec::EncodedSet enc;
      codec::Encode(original, &enc);
      EXPECT_EQ(enc.count, original.size());

      VertexSet decoded;
      codec::DecodeAll(enc, &decoded);
      EXPECT_EQ(decoded, original) << "size=" << size << " u=" << universe;

      // The untrusted-path decoder agrees and accepts its own output.
      VertexSet validated;
      Status st = codec::DecodeValidated(enc.bytes.data(), enc.bytes.size(),
                                         enc.count, &validated);
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(validated, original);

      // Re-encoding the decode reproduces the bytes (canonical form).
      codec::EncodedSet enc2;
      codec::Encode(decoded, &enc2);
      EXPECT_EQ(enc2.bytes, enc.bytes);
    }
  }
}

TEST(AdjCodecTest, RoundTripsAdversarialBoundaryValues) {
  // Values that stress varint width transitions, the shifted first
  // entry, 32-bit extremes, and dense single-byte-delta runs.
  std::vector<VertexSet> cases = {
      {0},
      {0xFFFFFFFEu},
      {0, 0xFFFFFFFEu},
      {0x7Eu, 0x7Fu, 0x80u, 0x81u},
      {0x3FFFu, 0x4000u, 0x4001u},
      {0x1FFFFFu, 0x200000u},
      {0xFFFFFFFu, 0x10000000u},
  };
  // 0, 1, 2, ..., 299: maximally dense (every delta one byte).
  VertexSet dense(300);
  for (size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<VertexId>(i);
  }
  cases.push_back(dense);
  for (const VertexSet& original : cases) {
    codec::EncodedSet enc;
    codec::Encode(original, &enc);
    VertexSet decoded;
    codec::DecodeAll(enc, &decoded);
    EXPECT_EQ(decoded, original);
    EXPECT_TRUE(
        codec::Validate(enc.bytes.data(), enc.bytes.size(), enc.count).ok());
  }
}

TEST(AdjCodecTest, SimdAndScalarDecodersIdentical) {
  SimdStateGuard guard;
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    // Mix dense (single-byte deltas, SIMD fast path) and sparse
    // (multi-byte deltas, scalar fallback) regimes.
    const size_t size = 1 + rng.NextBounded(2000);
    const uint64_t universe =
        (trial % 2 == 0) ? size + rng.NextBounded(size + 1)
                         : uint64_t{1} << (8 + rng.NextBounded(23));
    VertexSet original = RandomSorted(&rng, size, universe);
    codec::EncodedSet enc;
    codec::Encode(original, &enc);

    simd::SetSimdEnabled(false);
    VertexSet scalar_out;
    codec::DecodeAll(enc, &scalar_out);

    simd::SetSimdEnabled(true);  // no-op without AVX2; still differential
    VertexSet simd_out;
    codec::DecodeAll(enc, &simd_out);

    EXPECT_EQ(scalar_out, original) << "trial " << trial;
    EXPECT_EQ(simd_out, original) << "trial " << trial;
  }
}

TEST(AdjCodecTest, CursorStreamsInArbitraryChunks) {
  Rng rng(4242);
  VertexSet original = RandomSorted(&rng, 3000, 9000);
  codec::EncodedSet enc;
  codec::Encode(original, &enc);
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, size_t{8},
                       size_t{64}, size_t{256}, size_t{1000}}) {
    codec::DecodeCursor cursor(enc);
    EXPECT_EQ(cursor.remaining(), original.size());
    VertexSet streamed;
    std::vector<VertexId> buf(chunk);
    size_t n;
    while ((n = cursor.Next(buf.data(), chunk)) != 0) {
      streamed.insert(streamed.end(), buf.begin(), buf.begin() + n);
    }
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_EQ(streamed, original) << "chunk=" << chunk;
  }
}

TEST(AdjCodecFuzzTest, ValidateRejectsMalformedStreams) {
  // Hand-built adversarial streams. None may crash; all must be errors.
  struct Case {
    const char* what;
    std::vector<uint8_t> bytes;
    uint32_t count;
  };
  const std::vector<Case> cases = {
      {"truncated mid-varint", {0x80}, 1},
      {"missing values", {0x01}, 2},
      {"trailing bytes", {0x01, 0x01}, 1},
      {"zero delta", {0x01, 0x00}, 2},
      {"varint too long", {0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 1},
      {"non-minimal varint", {0x81, 0x00}, 1},
      {"delta over 2^32", {0xFF, 0xFF, 0xFF, 0xFF, 0x1F}, 1},
      {"sequence overflows u32",
       // first value 0xFFFFFFFE (varint of 0xFFFFFFFF), then delta 2.
       {0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x02},
       2},
      {"count without bytes", {}, 1},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(
        codec::Validate(c.bytes.data(), c.bytes.size(), c.count).ok())
        << c.what;
  }
  // Empty stream with count 0 is the canonical empty set.
  EXPECT_TRUE(codec::Validate(nullptr, 0, 0).ok());
}

TEST(AdjCodecFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(31337);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t size = rng.NextBounded(64);
    std::vector<uint8_t> bytes(size);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextBounded(256));
    }
    const uint32_t count = static_cast<uint32_t>(rng.NextBounded(80));
    VertexSet out;
    Status st =
        codec::DecodeValidated(bytes.data(), bytes.size(), count, &out);
    if (st.ok()) {
      // Whatever survives validation must be a strictly ascending set of
      // exactly `count` values that round-trips to the same bytes.
      ASSERT_EQ(out.size(), count);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
      EXPECT_TRUE(std::adjacent_find(out.begin(), out.end()) == out.end());
      codec::EncodedSet re;
      codec::Encode(out, &re);
      EXPECT_EQ(re.bytes, bytes);
    } else {
      EXPECT_TRUE(out.empty());
    }
  }
}

// --- fused kernels vs decode-then-intersect ---------------------------

TEST(FusedEncodedKernelTest, IntersectEncodedMatchesDecodeThenIntersect) {
  SimdStateGuard guard;
  Rng rng(1001);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t universe = 16 + rng.NextBounded(4096);
    VertexSet a = RandomSorted(&rng, rng.NextBounded(800), universe);
    VertexSet b = RandomSorted(&rng, rng.NextBounded(800), universe);
    codec::EncodedSet ea;
    codec::Encode(a, &ea);
    const VertexId lo = static_cast<VertexId>(rng.NextBounded(universe));
    const VertexId hi =
        static_cast<VertexId>(lo + rng.NextBounded(universe - lo + 1));
    VertexSet excludes;
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      excludes.push_back(static_cast<VertexId>(rng.NextBounded(universe)));
    }

    // Reference: scalar decode-then-intersect on the clamped inputs.
    simd::SetSimdEnabled(false);
    VertexSet decoded;
    codec::DecodeAll(ea, &decoded);
    VertexSet reference;
    IntersectExcluding(ClampView(decoded, lo, hi), b, excludes.data(),
                       excludes.size(), &reference);

    for (bool use_simd : {false, true}) {
      simd::SetSimdEnabled(use_simd);
      VertexSet fused;
      codec::IntersectEncoded(ea, b, lo, hi, excludes.data(),
                              excludes.size(), &fused);
      EXPECT_EQ(fused, reference)
          << "trial " << trial << " simd=" << use_simd;
      // Unclamped size kernel against the unclamped reference.
      VertexSet full;
      Intersect(decoded, b, &full);
      EXPECT_EQ(codec::IntersectSizeEncoded(ea, b), full.size());
      const size_t limit = rng.NextBounded(full.size() + 2);
      EXPECT_EQ(codec::IntersectSizeEncoded(ea, b, limit),
                std::min(limit, full.size()));
    }
  }
}

TEST(FusedEncodedKernelTest, DecodeClampedMatchesDecodeThenFilter) {
  SimdStateGuard guard;
  Rng rng(909);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t universe = 16 + rng.NextBounded(4096);
    VertexSet a = RandomSorted(&rng, rng.NextBounded(1000), universe);
    codec::EncodedSet ea;
    codec::Encode(a, &ea);
    const VertexId lo = static_cast<VertexId>(rng.NextBounded(universe));
    const VertexId hi =
        static_cast<VertexId>(lo + rng.NextBounded(universe - lo + 1));
    VertexSet excludes;
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      excludes.push_back(static_cast<VertexId>(rng.NextBounded(universe)));
    }
    VertexSet reference;
    CopyExcluding(ClampView(a, lo, hi), excludes.data(), excludes.size(),
                  &reference);
    for (bool use_simd : {false, true}) {
      simd::SetSimdEnabled(use_simd);
      VertexSet fused;
      codec::DecodeClamped(ea, lo, hi, excludes.data(), excludes.size(),
                           &fused);
      EXPECT_EQ(fused, reference)
          << "trial " << trial << " simd=" << use_simd;
    }
  }
}

TEST(AdjCodecTest, CompressionRatioOnRelabeledLikeSets) {
  // Dense neighborhoods (the relabeled-graph regime) must beat raw u32
  // by well over the 2x end-to-end target.
  Rng rng(5150);
  VertexSet dense = RandomSorted(&rng, 4000, 12000);
  codec::EncodedSet enc;
  codec::Encode(dense, &enc);
  EXPECT_LT(enc.bytes.size() * 2, enc.raw_bytes());
}

TEST(AdjCodecTest, CompressionEnabledHonorsRequest) {
  // The env kill switch is exercised by the CI forced-uncompressed legs;
  // here only the request plumbing (no env set in ctest runs).
  EXPECT_FALSE(codec::CompressionEnabled(false));
}

}  // namespace
}  // namespace benu
