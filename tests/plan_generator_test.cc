#include "plan/plan_generator.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

size_t CountType(const ExecutionPlan& plan, InstrType type) {
  size_t count = 0;
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == type) ++count;
  }
  return count;
}

TEST(PlanGeneratorTest, TrianglePlanShape) {
  Graph triangle = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(triangle);
  auto plan = GenerateRawPlan(triangle, Identity(3), cs);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string error;
  EXPECT_TRUE(ValidatePlan(*plan, &error)) << error << "\n"
                                           << plan->ToString();
  EXPECT_EQ(CountType(*plan, InstrType::kInit), 1u);
  EXPECT_EQ(CountType(*plan, InstrType::kEnumerate), 2u);
  EXPECT_EQ(CountType(*plan, InstrType::kReport), 1u);
  // DBQ for u1 and u2 (u3 has no later neighbor).
  EXPECT_EQ(CountType(*plan, InstrType::kDbQuery), 2u);
}

TEST(PlanGeneratorTest, LastVertexNeedsNoDbq) {
  Graph path = MakePath(3);  // 0-1-2, order 0,1,2
  auto plan = GenerateRawPlan(path, Identity(3), {});
  ASSERT_TRUE(plan.ok());
  // Vertex 2 is last: no DBQ for it. Vertex 0 feeds vertex 1's candidates;
  // vertex 1 feeds vertex 2's.
  EXPECT_EQ(CountType(*plan, InstrType::kDbQuery), 2u);
  for (const Instruction& ins : plan->instructions) {
    if (ins.type == InstrType::kDbQuery) {
      EXPECT_NE(ins.operands[0].index, 2);
    }
  }
}

TEST(PlanGeneratorTest, InjectiveFiltersOnlyForNonNeighbors) {
  Graph path = MakePath(3);
  auto plan = GenerateRawPlan(path, Identity(3), {});
  ASSERT_TRUE(plan.ok());
  // Candidate instruction for u3 (index 2) intersects A2 and must carry
  // ≠f1 (vertex 0 is not adjacent to vertex 2) but not ≠f2.
  bool found = false;
  for (const Instruction& ins : plan->instructions) {
    if (ins.type == InstrType::kIntersect &&
        ins.target == VarRef{VarKind::kC, 2}) {
      found = true;
      ASSERT_EQ(ins.filters.size(), 1u);
      EXPECT_EQ(ins.filters[0].kind, FilterKind::kNotEqual);
      EXPECT_EQ(ins.filters[0].f_index, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PlanGeneratorTest, SymmetryFiltersReplaceInjective) {
  Graph triangle = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(triangle);
  auto plan = GenerateRawPlan(triangle, Identity(3), cs);
  ASSERT_TRUE(plan.ok());
  // Clique constraints are 0<1<2 (total order): every candidate
  // instruction uses order filters, never ≠.
  for (const Instruction& ins : plan->instructions) {
    for (const FilterCondition& fc : ins.filters) {
      EXPECT_NE(fc.kind, FilterKind::kNotEqual);
    }
  }
}

TEST(PlanGeneratorTest, DisconnectedPrefixUsesAllVertices) {
  // Path 0-1-2 matched in order 0,2,1: vertex 2 is not adjacent to 0, so
  // its raw candidates are V(G).
  Graph path = MakePath(3);
  auto plan = GenerateRawPlan(path, {0, 2, 1}, {});
  ASSERT_TRUE(plan.ok());
  bool saw_all = false;
  for (const Instruction& ins : plan->instructions) {
    for (const VarRef& op : ins.operands) {
      if (op.kind == VarKind::kAllVertices) saw_all = true;
    }
  }
  EXPECT_TRUE(saw_all);
}

TEST(PlanGeneratorTest, RejectsBadMatchingOrders) {
  Graph triangle = MakeClique(3);
  EXPECT_FALSE(GenerateRawPlan(triangle, {0, 1}, {}).ok());
  EXPECT_FALSE(GenerateRawPlan(triangle, {0, 1, 1}, {}).ok());
  EXPECT_FALSE(GenerateRawPlan(triangle, {0, 1, 5}, {}).ok());
}

TEST(PlanGeneratorTest, UniOperandEliminationRemovesTrivialIntersections) {
  // In a path plan, T instructions with a single operand and C
  // instructions without filters are removed.
  Graph path = MakePath(2);
  auto plan = GenerateRawPlan(path, Identity(2), {});
  ASSERT_TRUE(plan.ok());
  for (const Instruction& ins : plan->instructions) {
    if (ins.type == InstrType::kIntersect) {
      EXPECT_TRUE(ins.operands.size() > 1 || !ins.filters.empty())
          << ins.ToString();
    }
  }
}

TEST(PlanGeneratorTest, EveryQueryPatternProducesValidPlan) {
  for (const std::string& name : AllPatternNames()) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
    ASSERT_TRUE(plan.ok()) << name;
    std::string error;
    EXPECT_TRUE(ValidatePlan(*plan, &error)) << name << ": " << error;
  }
}

TEST(ValidatePlanTest, CatchesUndefinedOperands) {
  ExecutionPlan plan;
  plan.pattern = MakeClique(2);
  plan.matching_order = {0, 1};
  Instruction bad;
  bad.type = InstrType::kIntersect;
  bad.target = {VarKind::kT, 5};
  bad.operands = {{VarKind::kA, 0}};  // A1 never defined
  plan.instructions = {bad};
  std::string error;
  EXPECT_FALSE(ValidatePlan(plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST(InstructionTest, ToStringRendersLikeThePaper) {
  Instruction ins;
  ins.type = InstrType::kIntersect;
  ins.target = {VarKind::kC, 2};
  ins.operands = {{VarKind::kA, 0}, {VarKind::kA, 1}};
  ins.filters = {{FilterKind::kGreater, 0}};
  EXPECT_EQ(ins.ToString(), "C3 := Intersect(A1, A2) | >f1");
}

}  // namespace
}  // namespace benu
