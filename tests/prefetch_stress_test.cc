// Stress and lifecycle tests of the DB cache's asynchronous prefetch
// pipeline: single-flight must hold across the Get and PrefetchAsync
// paths (at most one store query per distinct key while it stays
// cached), a Get racing a queued flight must claim it rather than
// deadlock, and teardown mid-flight must publish every flight.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/db_cache.h"

namespace benu {
namespace {

std::vector<VertexId> AllVertices(const Graph& g) {
  std::vector<VertexId> keys(g.NumVertices());
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

TEST(PrefetchTest, SyncPrefetchConvertsToHits) {
  // Null fetch pool: PrefetchAsync drains inline, so by the time it
  // returns every key is cached and tagged.
  Graph g = MakeCycle(6);
  DistributedKvStore store(g, 2);
  DbCache cache(&store, 1 << 20, 1);
  const VertexId keys[] = {0, 2, 4};
  cache.PrefetchAsync(keys, 3);
  EXPECT_EQ(store.stats().queries.load(), 3u);
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetches_issued, 3u);
  EXPECT_EQ(stats.misses, 0u);  // prefetch fetches belong to no lookup

  bool hit = false;
  EXPECT_EQ(*cache.GetAdjacency(2, &hit), (VertexSet{1, 3}));
  EXPECT_TRUE(hit);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  // The prefetched tag clears on first touch: a second hit is ordinary.
  cache.GetAdjacency(2, &hit);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);
  // No further store traffic for prefetched keys.
  cache.GetAdjacency(0);
  cache.GetAdjacency(4);
  EXPECT_EQ(store.stats().queries.load(), 3u);
}

TEST(PrefetchTest, AlreadyCachedOrInFlightKeysNotReissued) {
  Graph g = MakeCycle(6);
  DistributedKvStore store(g, 2);
  DbCache cache(&store, 1 << 20, 1);
  cache.GetAdjacency(1);  // cached the ordinary way
  const VertexId keys[] = {1, 1, 3};  // duplicate + cached
  cache.PrefetchAsync(keys, 3);
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetches_issued, 1u);  // only key 3
  EXPECT_EQ(store.stats().queries.load(), 2u);
}

TEST(PrefetchTest, AsyncPrefetchThroughPoolConvertsToHits) {
  auto g = GenerateBarabasiAlbert(200, 4, 11);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  ThreadPool fetchers(2);
  DbCache cache(&store, 256u << 20, 8, &fetchers, /*prefetch_batch_size=*/16);
  std::vector<VertexId> keys = AllVertices(*g);
  cache.PrefetchAsync(keys.data(), keys.size());
  cache.WaitForPrefetches();
  EXPECT_EQ(store.stats().queries.load(), g->NumVertices());
  EXPECT_GT(store.stats().batch_gets.load(), 0u);

  bool hit = false;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    auto set = cache.GetAdjacency(v, &hit);
    EXPECT_TRUE(hit) << "key " << v;
    EXPECT_EQ(set->size(), g->Adjacency(v).size);
  }
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_hits, g->NumVertices());
  EXPECT_EQ(stats.misses, 0u);
  // No store query beyond the one batched fetch per distinct key.
  EXPECT_EQ(store.stats().queries.load(), g->NumVertices());
}

TEST(PrefetchTest, GetClaimsQueuedFlightWhenFetchersAreBusy) {
  // Block the only fetcher thread so the queued flight stays queued,
  // then Get the key: the Get must claim the flight and fetch
  // synchronously instead of waiting for a fetcher that cannot run.
  Graph g = MakeStar(5);
  DistributedKvStore store(g, 1);
  ThreadPool fetchers(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  fetchers.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  DbCache cache(&store, 1 << 20, 1, &fetchers);
  const VertexId key = 3;
  cache.PrefetchAsync(&key, 1);
  bool hit = true;
  auto set = cache.GetAdjacency(key, &hit);  // must not deadlock
  EXPECT_FALSE(hit);
  EXPECT_EQ(*set, (VertexSet{0}));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  cache.WaitForPrefetches();
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_claimed, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // The claim transferred the fetch: exactly one store query, whether the
  // late fetcher observed the claim before or after batch assembly.
  EXPECT_EQ(store.stats().queries.load(), 1u);
}

TEST(PrefetchTest, OneStoreQueryPerDistinctKeyUnderConcurrentRace) {
  // Threads racing PrefetchAsync and Get over the same key space, with a
  // capacity that never evicts: the store must see exactly one query per
  // distinct key — the single-flight guarantee across both paths.
  auto g = GenerateBarabasiAlbert(400, 4, 29);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  ThreadPool fetchers(2);
  DbCache cache(&store, 256u << 20, 8, &fetchers, /*prefetch_batch_size=*/8);
  constexpr int kThreads = 8;
  std::vector<VertexId> keys = AllVertices(*g);
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&, t] {
        Rng rng(5000 + t);
        for (int i = 0; i < 2000; ++i) {
          const auto v = static_cast<VertexId>(
              rng.NextBounded(g->NumVertices()));
          if (t % 2 == 0 && i % 4 == 0) {
            const size_t count =
                std::min<size_t>(16, g->NumVertices() - v);
            cache.PrefetchAsync(keys.data() + v, count);
          } else {
            auto set = cache.GetAdjacency(v);
            EXPECT_EQ(set->size(), g->Adjacency(v).size);
          }
        }
      });
    }
    pool.Wait();
  }
  cache.WaitForPrefetches();
  EXPECT_LE(store.stats().queries.load(), g->NumVertices());
  DbCacheStats stats = cache.stats();
  // Store queries = primary misses + prefetch fetches that were not
  // claimed by a Get (claimed ones are counted inside misses).
  EXPECT_EQ(store.stats().queries.load(),
            stats.misses + stats.prefetches_issued - stats.prefetch_claimed);
}

TEST(PrefetchTest, DestructionMidFlightDoesNotDeadlockOrLeak) {
  // Tear the cache down right after enqueueing a large prefetch: the
  // destructor must wait out running fetcher jobs, drain what they left,
  // and publish every flight. Run several rounds to vary the interleaving.
  auto g = GenerateBarabasiAlbert(300, 4, 31);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  std::vector<VertexId> keys = AllVertices(*g);
  for (int round = 0; round < 10; ++round) {
    ThreadPool fetchers(2);
    const Count before = store.stats().queries.load();
    {
      DbCache cache(&store, 256u << 20, 8, &fetchers,
                    /*prefetch_batch_size=*/4);
      cache.PrefetchAsync(keys.data(), keys.size());
      // Destructor runs here, mid-flight.
    }
    // Every enqueued key was fetched exactly once, by a fetcher job or by
    // the destructor's inline drain.
    EXPECT_EQ(store.stats().queries.load() - before, g->NumVertices());
  }
}

TEST(PrefetchTest, ZeroCapacityPrefetchesAreWastedNotRetained) {
  Graph g = MakeCycle(8);
  DistributedKvStore store(g, 2);
  DbCache cache(&store, 0, 1);  // forced-sync (null pool), never retains
  const VertexId keys[] = {0, 1, 2, 3};
  cache.PrefetchAsync(keys, 4);
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetches_issued, 4u);
  EXPECT_EQ(stats.prefetch_wasted, 4u);  // nothing could be retained
  bool hit = true;
  cache.GetAdjacency(0, &hit);
  EXPECT_FALSE(hit);  // and nothing converts to a hit
}

TEST(PrefetchTest, EvictedUnusedPrefetchCountsAsWasted) {
  Graph g = MakeCycle(8);  // uniform entries: 2 ids + overhead each
  DistributedKvStore store(g, 1);
  const size_t entry_bytes = 2 * sizeof(VertexId) + 32;
  DbCache cache(&store, 2 * entry_bytes, 1);
  const VertexId keys[] = {0, 1};
  cache.PrefetchAsync(keys, 2);
  bool hit = false;
  cache.GetAdjacency(0, &hit);  // converts 0; LRU order now [0, 1]
  EXPECT_TRUE(hit);
  cache.GetAdjacency(4, &hit);  // evicts 1, which never served a hit
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.prefetch_wasted, 1u);
}

}  // namespace
}  // namespace benu
