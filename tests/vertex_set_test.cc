#include "graph/vertex_set.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace benu {
namespace {

VertexSet Make(std::initializer_list<VertexId> values) {
  return VertexSet(values);
}

TEST(IntersectTest, DisjointSetsYieldEmpty) {
  VertexSet out;
  Intersect(Make({1, 3, 5}), Make({2, 4, 6}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, IdenticalSetsYieldSelf) {
  VertexSet a = Make({2, 4, 8, 16});
  VertexSet out;
  Intersect(a, a, &out);
  EXPECT_EQ(out, a);
}

TEST(IntersectTest, PartialOverlap) {
  VertexSet out;
  Intersect(Make({1, 2, 3, 7, 9}), Make({2, 3, 4, 9, 11}), &out);
  EXPECT_EQ(out, Make({2, 3, 9}));
}

TEST(IntersectTest, EmptyOperand) {
  VertexSet out = Make({5});
  Intersect(Make({}), Make({1, 2}), &out);
  EXPECT_TRUE(out.empty());
  Intersect(Make({1, 2}), Make({}), &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, OutputIsClearedFirst) {
  VertexSet out = Make({42, 43});
  Intersect(Make({1}), Make({1}), &out);
  EXPECT_EQ(out, Make({1}));
}

TEST(IntersectTest, GallopingPathMatchesMerge) {
  // A tiny set against a large one triggers the galloping kernel; compare
  // against the straightforward answer.
  VertexSet large;
  for (VertexId v = 0; v < 10000; v += 3) large.push_back(v);
  VertexSet small = Make({0, 3, 4, 9000, 9998});
  VertexSet out;
  Intersect(small, large, &out);
  EXPECT_EQ(out, Make({0, 3, 9000}));
  // Symmetric argument order must agree.
  VertexSet out2;
  Intersect(large, small, &out2);
  EXPECT_EQ(out2, out);
}

TEST(IntersectTest, RandomizedAgreesWithStdSetIntersection) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    VertexSet a;
    VertexSet b;
    const size_t size_a = rng.NextBounded(60);
    const size_t size_b = rng.NextBounded(2000) + 1;
    for (size_t i = 0; i < size_a; ++i) {
      a.push_back(static_cast<VertexId>(rng.NextBounded(500)));
    }
    for (size_t i = 0; i < size_b; ++i) {
      b.push_back(static_cast<VertexId>(rng.NextBounded(500)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    VertexSet expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    VertexSet out;
    Intersect(a, b, &out);
    EXPECT_EQ(out, expected);
    EXPECT_EQ(IntersectSize(a, b), expected.size());
  }
}

TEST(IntersectSizeTest, CountsWithoutMaterializing) {
  EXPECT_EQ(IntersectSize(Make({1, 2, 3}), Make({2, 3, 4})), 2u);
  EXPECT_EQ(IntersectSize(Make({}), Make({2, 3, 4})), 0u);
}

TEST(IntersectSizeTest, LimitCapsTheCount) {
  // limit turns the scan into "are there at least k common elements?":
  // the return value is min(|a ∩ b|, limit) on every kernel path.
  const VertexSet a = Make({1, 2, 3, 4, 5, 6});
  const VertexSet b = Make({2, 3, 4, 5, 6, 7});
  EXPECT_EQ(IntersectSize(a, b, 0), 0u);
  EXPECT_EQ(IntersectSize(a, b, 3), 3u);
  EXPECT_EQ(IntersectSize(a, b, 5), 5u);
  EXPECT_EQ(IntersectSize(a, b, 100), 5u);
  // Galloping path (large size ratio) honors the limit too.
  VertexSet large;
  for (VertexId v = 0; v < 4096; ++v) large.push_back(v);
  EXPECT_EQ(IntersectSize(Make({10, 20, 30, 40}), large, 2), 2u);
}

TEST(ContainsTest, FindsPresentAndAbsent) {
  VertexSet s = Make({1, 5, 9});
  EXPECT_TRUE(Contains(s, 1));
  EXPECT_TRUE(Contains(s, 9));
  EXPECT_FALSE(Contains(s, 4));
  EXPECT_FALSE(Contains(VertexSet{}, 4));
}

TEST(FilterTest, GreaterKeepsStrictlyAbove) {
  VertexSet out;
  FilterGreater(Make({1, 3, 5, 7}), 3, &out);
  EXPECT_EQ(out, Make({5, 7}));
  FilterGreater(Make({1, 3}), 9, &out);
  EXPECT_TRUE(out.empty());
}

TEST(FilterTest, LessKeepsStrictlyBelow) {
  VertexSet out;
  FilterLess(Make({1, 3, 5, 7}), 5, &out);
  EXPECT_EQ(out, Make({1, 3}));
  FilterLess(Make({4, 5}), 1, &out);
  EXPECT_TRUE(out.empty());
}

TEST(EraseValueTest, RemovesOnlyPresentValue) {
  VertexSet s = Make({1, 2, 3});
  EraseValue(&s, 2);
  EXPECT_EQ(s, Make({1, 3}));
  EraseValue(&s, 99);
  EXPECT_EQ(s, Make({1, 3}));
}

}  // namespace
}  // namespace benu
