#include "common/flags_util.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace benu {
namespace {

// Builds a mutable argv from string literals (flags take char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagsUtilTest, ValueReturnsLastOccurrence) {
  Argv a({"prog", "--graph=er:10,20,1", "--port=9", "--graph=ba:5,2,3"});
  EXPECT_STREQ(flags::Value(a.argc(), a.argv(), "--graph", "none"),
               "ba:5,2,3");
  EXPECT_STREQ(flags::Value(a.argc(), a.argv(), "--port", "0"), "9");
  EXPECT_STREQ(flags::Value(a.argc(), a.argv(), "--missing", "fb"), "fb");
}

TEST(FlagsUtilTest, ValuesCollectsAllInOrder) {
  Argv a({"prog", "--servers=a:1", "--x=0", "--servers=b:2"});
  EXPECT_EQ(flags::Values(a.argc(), a.argv(), "--servers"),
            (std::vector<std::string>{"a:1", "b:2"}));
  EXPECT_TRUE(flags::Values(a.argc(), a.argv(), "--none").empty());
}

TEST(FlagsUtilTest, HasDetectsBareFlagOnly) {
  Argv a({"prog", "--verbose", "--level=3"});
  EXPECT_TRUE(flags::Has(a.argc(), a.argv(), "--verbose"));
  // --level appears only with a value; Has looks for the bare form.
  EXPECT_FALSE(flags::Has(a.argc(), a.argv(), "--level"));
  EXPECT_FALSE(flags::Has(a.argc(), a.argv(), "--absent"));
}

TEST(FlagsUtilTest, TypedConveniences) {
  Argv a({"prog", "--size=4096", "--threads=7", "--ratio=0.5", "--big=12345678901",
          "--flag=0", "--port=70000", "--junk=8x"});
  EXPECT_EQ(flags::SizeValue(a.argc(), a.argv(), "--size", 1), 4096u);
  EXPECT_EQ(flags::IntValue(a.argc(), a.argv(), "--threads", 1), 7);
  EXPECT_DOUBLE_EQ(flags::DoubleValue(a.argc(), a.argv(), "--ratio", 1.0),
                   0.5);
  EXPECT_EQ(flags::Int64Value(a.argc(), a.argv(), "--big", 0), 12345678901ll);
  EXPECT_FALSE(flags::BoolValue(a.argc(), a.argv(), "--flag", true));
  EXPECT_TRUE(flags::BoolValue(a.argc(), a.argv(), "--missing", true));
  // Ports are u16; oversized values truncate like the mains always did.
  EXPECT_EQ(flags::PortValue(a.argc(), a.argv(), "--port", 1),
            static_cast<uint16_t>(70000));
  // strtoul semantics: trailing garbage is ignored, "8x" parses as 8.
  EXPECT_EQ(flags::SizeValue(a.argc(), a.argv(), "--junk", 0), 8u);
}

TEST(FlagsUtilTest, FallbacksWhenAbsent) {
  Argv a({"prog"});
  EXPECT_EQ(flags::SizeValue(a.argc(), a.argv(), "--n", 42), 42u);
  EXPECT_EQ(flags::IntValue(a.argc(), a.argv(), "--n", -3), -3);
  EXPECT_EQ(flags::PortValue(a.argc(), a.argv(), "--n", 9099), 9099);
  EXPECT_DOUBLE_EQ(flags::DoubleValue(a.argc(), a.argv(), "--n", 2.5), 2.5);
}

TEST(FlagsUtilTest, KillServersIsIdempotent) {
  // Dead/empty entries: KillServers must be callable twice (explicit kill
  // followed by the atexit handler) without touching reset pids.
  std::vector<flags::ServerProcess> servers(2);
  servers[0].pid = -1;
  servers[1].pid = -1;
  flags::KillServers(servers);
  flags::KillServers(servers);
  EXPECT_EQ(servers[0].pid, -1);
}

}  // namespace
}  // namespace benu
