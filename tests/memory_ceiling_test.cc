// Memory-ceiling stress test of the governed hybrid execution mode
// (no gtest: a forking harness with a custom main).
//
// clique5 on a dense Erdős–Rényi graph materializes ~8M partial
// embeddings across its ENU levels. A level-synchronous BFS that retains
// every frontier (ExpansionMode::kFullBfs, the control) needs hundreds of
// megabytes for them; the governed hybrid mode leases bounded frontier
// batches and pops them stack-style, so its footprint stays near the
// configured memory budget no matter how many embeddings exist.
//
// The harness runs the enumeration three ways:
//
//   parent       plain DFS, no address-space cap — the reference count;
//   hybrid child RLIMIT_AS capped: must finish with the reference count
//                (graceful spill-to-DFS near the ceiling, never OOM);
//   full-BFS child same cap: must die with std::bad_alloc (exit 42) —
//                proving the cap is real and unbounded BFS cannot fit.
//
// Children are forked (the parent is single-threaded by then) and set
// their own RLIMIT_AS, so the test is self-contained; the CI
// memory-ceiling leg additionally wraps the whole binary in `ulimit -v`.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <new>

#include "common/logging.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"

namespace {

using namespace benu;

// Dense enough that Σ level-frontiers ≫ the cap, small enough that the
// two full enumerations stay test-sized: p ≈ 0.25, ~1.3M triangles,
// ~4M 4-cliques, ~2.5M 5-cliques.
constexpr size_t kVertices = 800;
constexpr size_t kEdges = 80000;
constexpr unsigned kSeed = 29;
/// Address-space cap for both children, bytes.
constexpr rlim_t kCapBytes = 128u << 20;
/// The OOM control's distinguished exit code.
constexpr int kOomExit = 42;

BenuOptions Options(ExpansionMode expansion) {
  BenuOptions options;
  // Single worker, single thread: bad_alloc (if any) surfaces on the
  // enumerating thread itself — forced-sync keeps the prefetch pipeline
  // off background threads too.
  options.cluster.num_workers = 1;
  options.cluster.threads_per_worker = 1;
  options.cluster.execution_threads = 1;
  options.cluster.max_runtime_threads = 1;
  options.cluster.db_cache_bytes = 4u << 20;
  options.cluster.prefetch_budget = 16;
  options.cluster.force_sync_prefetch = true;
  options.cluster.expansion = expansion;
  // The governed ceiling sits far below RLIMIT_AS: the hybrid mode must
  // plateau here while full-BFS (which ignores leases by design) blows
  // straight through the address-space cap.
  options.cluster.memory_budget_bytes = 24u << 20;
  // Keep every enumeration level materialized — VCBC would compress the
  // deepest (largest) frontier away.
  options.plan.apply_vcbc = false;
  return options;
}

Count Enumerate(const BenuOptions& options) {
  Graph data =
      std::move(GenerateErdosRenyi(kVertices, kEdges, kSeed)).value();
  Graph pattern = std::move(GetPattern("clique5")).value();
  auto result = RunBenu(data, pattern, options);
  BENU_CHECK(result.ok()) << result.status().ToString();
  return result->run.total_matches;
}

/// Runs one capped enumeration in a forked child; returns its exit code.
int RunCapped(ExpansionMode expansion, Count expect) {
  const pid_t pid = fork();
  BENU_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    rlimit cap{};
    cap.rlim_cur = kCapBytes;
    cap.rlim_max = kCapBytes;
    if (setrlimit(RLIMIT_AS, &cap) != 0) _exit(3);
    try {
      const Count matches = Enumerate(Options(expansion));
      _exit(matches == expect ? 0 : 1);
    } catch (const std::bad_alloc&) {
      _exit(kOomExit);
    }
  }
  int status = 0;
  BENU_CHECK(waitpid(pid, &status, 0) == pid) << "waitpid failed";
  if (!WIFEXITED(status)) {
    std::fprintf(stderr, "capped child died abnormally (status %d)\n",
                 status);
    return -1;
  }
  return WEXITSTATUS(status);
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);

  // Reference: plain DFS, no cap.
  const Count reference = Enumerate(Options(ExpansionMode::kDfs));
  BENU_CHECK(reference > 0) << "degenerate workload: no 5-cliques";
  std::printf("reference (dfs, uncapped): %llu matches\n",
              static_cast<unsigned long long>(reference));

  const int hybrid_exit = RunCapped(ExpansionMode::kHybrid, reference);
  BENU_CHECK(hybrid_exit == 0)
      << "hybrid run under the " << (kCapBytes >> 20)
      << "MB address-space cap exited " << hybrid_exit
      << " (0 = correct count; " << kOomExit
      << " = OOM — the governor failed to spill)";
  std::printf("hybrid under %lluMB cap: correct count, no OOM\n",
              static_cast<unsigned long long>(kCapBytes >> 20));

  const int bfs_exit = RunCapped(ExpansionMode::kFullBfs, reference);
  BENU_CHECK(bfs_exit == kOomExit)
      << "full-BFS control exited " << bfs_exit << " instead of "
      << kOomExit
      << ": the cap did not bite, so the hybrid result above proves "
         "nothing — shrink kCapBytes or grow the graph";
  std::printf("full-bfs control: std::bad_alloc under the same cap, "
              "as intended\n");
  std::printf("memory ceiling test OK\n");
  return 0;
}
