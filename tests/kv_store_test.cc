#include "storage/kv_store.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"

namespace benu {
namespace {

TEST(KvStoreTest, ServesAdjacencySets) {
  Graph g = MakeCycle(5);
  DistributedKvStore store(g, 4);
  auto adj = store.GetAdjacency(0).Materialize();
  ASSERT_NE(adj, nullptr);
  EXPECT_EQ(*adj, (VertexSet{1, 4}));
}

TEST(KvStoreTest, CountsQueriesAndBytes) {
  Graph g = MakeStar(3);
  DistributedKvStore store(g, 2);
  store.GetAdjacency(0);  // hub, degree 3
  store.GetAdjacency(1);  // leaf, degree 1
  EXPECT_EQ(store.stats().queries.load(), 2u);
  EXPECT_EQ(store.stats().bytes_fetched.load(),
            DistributedKvStore::ReplyBytes(3) +
                DistributedKvStore::ReplyBytes(1));
}

TEST(KvStoreTest, PartitioningIsStable) {
  Graph g = MakeCycle(8);
  DistributedKvStore store(g, 3);
  EXPECT_EQ(store.num_partitions(), 3u);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(store.PartitionOf(v), v % 3);
  }
}

TEST(KvStoreTest, ZeroPartitionsClampedToOne) {
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 0);
  EXPECT_EQ(store.num_partitions(), 1u);
}

TEST(KvStoreDeathTest, OutOfRangeVertexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 1);
  EXPECT_DEATH(store.GetAdjacency(99), "out of range");
}

TEST(KvStoreTest, SingleGetIsOneRoundTrip) {
  Graph g = MakeCycle(4);
  DistributedKvStore store(g, 2);
  store.GetAdjacency(0);
  store.GetAdjacency(1);
  EXPECT_EQ(store.stats().round_trips.load(), 2u);
  EXPECT_EQ(store.stats().batch_gets.load(), 0u);
}

TEST(KvStoreTest, BatchGetMatchesSingleGets) {
  Graph g = MakeStar(5);
  DistributedKvStore store(g, 4);
  const VertexId keys[] = {0, 2, 5};
  auto reply = store.GetAdjacencyBatch(keys);
  ASSERT_EQ(reply.values.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    auto batched = reply.values[i].Materialize();
    ASSERT_NE(batched, nullptr);
    EXPECT_EQ(*batched, *store.GetAdjacency(keys[i]).Materialize());
  }
}

TEST(KvStoreTest, BatchGetChargesOneRoundTripPerPartition) {
  Graph g = MakeCycle(8);
  DistributedKvStore store(g, 4);  // PartitionOf(v) == v % 4
  // Keys in 2 distinct partitions: {0, 4} -> 0 and {1} -> 1.
  const VertexId keys[] = {0, 4, 1};
  auto reply = store.GetAdjacencyBatch(keys);
  EXPECT_EQ(reply.round_trips, 2u);
  EXPECT_EQ(reply.bytes, 3 * DistributedKvStore::ReplyBytes(2));
  // Stats: key-level queries (the paper's #DBQ) advance by the batch
  // size, round trips by the distinct partitions — bytes are unchanged
  // relative to single gets.
  EXPECT_EQ(store.stats().queries.load(), 3u);
  EXPECT_EQ(store.stats().round_trips.load(), 2u);
  EXPECT_EQ(store.stats().batch_gets.load(), 1u);
  EXPECT_EQ(store.stats().bytes_fetched.load(),
            3 * DistributedKvStore::ReplyBytes(2));
}

TEST(KvStoreTest, EmptyBatchIsFree) {
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 2);
  auto reply = store.GetAdjacencyBatch({});
  EXPECT_TRUE(reply.values.empty());
  EXPECT_EQ(reply.round_trips, 0u);
  EXPECT_EQ(reply.bytes, 0u);
  EXPECT_EQ(store.stats().queries.load(), 0u);
  EXPECT_EQ(store.stats().round_trips.load(), 0u);
}

TEST(KvStoreTest, StatsReset) {
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 1);
  store.GetAdjacency(0);
  store.mutable_stats().Reset();
  EXPECT_EQ(store.stats().queries.load(), 0u);
  EXPECT_EQ(store.stats().bytes_fetched.load(), 0u);
}

}  // namespace
}  // namespace benu
