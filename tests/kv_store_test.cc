#include "storage/kv_store.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"

namespace benu {
namespace {

TEST(KvStoreTest, ServesAdjacencySets) {
  Graph g = MakeCycle(5);
  DistributedKvStore store(g, 4);
  auto adj = store.GetAdjacency(0);
  ASSERT_NE(adj, nullptr);
  EXPECT_EQ(*adj, (VertexSet{1, 4}));
}

TEST(KvStoreTest, CountsQueriesAndBytes) {
  Graph g = MakeStar(3);
  DistributedKvStore store(g, 2);
  store.GetAdjacency(0);  // hub, degree 3
  store.GetAdjacency(1);  // leaf, degree 1
  EXPECT_EQ(store.stats().queries.load(), 2u);
  EXPECT_EQ(store.stats().bytes_fetched.load(),
            DistributedKvStore::ReplyBytes(3) +
                DistributedKvStore::ReplyBytes(1));
}

TEST(KvStoreTest, PartitioningIsStable) {
  Graph g = MakeCycle(8);
  DistributedKvStore store(g, 3);
  EXPECT_EQ(store.num_partitions(), 3u);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(store.PartitionOf(v), v % 3);
  }
}

TEST(KvStoreTest, ZeroPartitionsClampedToOne) {
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 0);
  EXPECT_EQ(store.num_partitions(), 1u);
}

TEST(KvStoreDeathTest, OutOfRangeVertexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 1);
  EXPECT_DEATH(store.GetAdjacency(99), "out of range");
}

TEST(KvStoreTest, StatsReset) {
  Graph g = MakeCycle(3);
  DistributedKvStore store(g, 1);
  store.GetAdjacency(0);
  store.mutable_stats().Reset();
  EXPECT_EQ(store.stats().queries.load(), 0u);
  EXPECT_EQ(store.stats().bytes_fetched.load(), 0u);
}

}  // namespace
}  // namespace benu
