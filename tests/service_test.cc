// Tests of the resident enumeration service: version-3 wire frames, the
// documented protocol constants (docs/wire-protocol.md must match
// common/wire.h), the fair scheduler, the query engine (equivalence with
// one-shot RunBenu, cancel, admission control, plan cache) and the TCP
// front end (concurrent clients, malformed-frame containment, service.*
// metrics docs coverage).

#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/wire.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "service/query_engine.h"
#include "service/service_client.h"
#include "service/service_server.h"
#include "storage/socket_io.h"
#include "storage/transport.h"

namespace benu {
namespace {

using service::FairScheduler;
using service::QueryEngine;
using service::ServiceClient;
using service::ServiceConfig;
using service::ServiceTcpServer;

// --- wire v3 frames ---------------------------------------------------

wire::Frame MustDecode(const std::vector<uint8_t>& buf) {
  auto frame = wire::DecodeFrame(buf);
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  return *frame;
}

TEST(ServiceWireTest, QueryRequestRoundTrip) {
  wire::QuerySpec spec;
  spec.pattern = "q5";
  spec.pattern_labels = {0, 2, 1, 2};
  spec.options = wire::kQueryVcbc | wire::kQueryWantProgress;
  std::vector<uint8_t> buf;
  wire::AppendQueryRequest(spec, &buf);
  wire::SetFrameTag(buf, 1234);
  EXPECT_EQ(wire::FrameTag(buf), 1234);
  auto decoded = wire::DecodeQueryRequest(MustDecode(buf));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, spec);
}

TEST(ServiceWireTest, QueryResultRoundTrip) {
  wire::QueryResultInfo info;
  info.matches = 123456789;
  info.codes = 42;
  info.tasks = 17;
  info.elapsed_us = 987654;
  info.flags = wire::kQueryResultCancelled | wire::kQueryResultPlanCacheHit;
  std::vector<uint8_t> buf;
  wire::AppendQueryResult(info, &buf);
  auto decoded = wire::DecodeQueryResult(MustDecode(buf));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, info);
  EXPECT_TRUE(decoded->cancelled());
  EXPECT_TRUE(decoded->plan_cache_hit());
}

TEST(ServiceWireTest, CancelAndProgressRoundTrip) {
  std::vector<uint8_t> cancel;
  wire::AppendCancelRequest(&cancel);
  wire::SetFrameTag(cancel, 7);
  EXPECT_TRUE(wire::DecodeCancelRequest(MustDecode(cancel)).ok());

  wire::QueryProgress progress;
  progress.tasks_done = 10;
  progress.tasks_total = 64;
  progress.matches_so_far = 999;
  std::vector<uint8_t> buf;
  wire::AppendProgress(progress, &buf);
  auto decoded = wire::DecodeProgress(MustDecode(buf));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, progress);
}

// A version-1/2 frame must not carry a version-3 service type; the same
// old frame with a v1 type still decodes (compatibility is per-type, not
// a flag-day).
TEST(ServiceWireTest, ServiceTypesAreVersionGated) {
  std::vector<uint8_t> buf;
  wire::AppendCancelRequest(&buf);
  buf[4] = 2;  // header version byte
  EXPECT_FALSE(wire::DecodeFrame(buf).ok());

  std::vector<uint8_t> hello;
  wire::AppendHelloRequest(&hello);
  hello[4] = 1;
  EXPECT_TRUE(wire::DecodeFrame(hello).ok());
}

TEST(ServiceWireTest, MalformedQueryPayloadsRejected) {
  // Unknown option bit.
  wire::QuerySpec spec;
  spec.pattern = "q5";
  spec.options = 1u << 30;
  std::vector<uint8_t> buf;
  wire::AppendQueryRequest(spec, &buf);
  EXPECT_FALSE(wire::DecodeQueryRequest(MustDecode(buf)).ok());

  // Empty pattern name.
  spec.options = 0;
  spec.pattern.clear();
  buf.clear();
  wire::AppendQueryRequest(spec, &buf);
  EXPECT_FALSE(wire::DecodeQueryRequest(MustDecode(buf)).ok());

  // Name length pointing past the payload end.
  spec.pattern = "q5";
  buf.clear();
  wire::AppendQueryRequest(spec, &buf);
  // Payload layout: u32 options, u32 label count, u32 name length, name.
  const size_t name_len_at = wire::kHeaderBytes + 8;
  buf[name_len_at] = 0xFF;
  EXPECT_FALSE(wire::DecodeQueryRequest(MustDecode(buf)).ok());

  // A query-result payload of the wrong size.
  std::vector<uint8_t> bad;
  wire::AppendHeader(wire::MessageType::kQueryResult, 0, 8, &bad);
  bad.resize(bad.size() + 8, 0);
  EXPECT_FALSE(wire::DecodeQueryResult(MustDecode(bad)).ok());

  // A cancel with a non-empty payload.
  bad.clear();
  wire::AppendHeader(wire::MessageType::kCancelRequest, 0, 4, &bad);
  bad.resize(bad.size() + 4, 0);
  EXPECT_FALSE(wire::DecodeCancelRequest(MustDecode(bad)).ok());
}

// --- docs/wire-protocol.md cross-check --------------------------------

// The normative spec documents the protocol constants in machine-checkable
// `name` / `value` table rows; this test parses them and asserts each one
// against the real constant, so the document cannot drift from wire.h.
TEST(ServiceWireTest, WireProtocolDocMatchesConstants) {
  std::ifstream doc(std::string(BENU_SOURCE_DIR) + "/docs/wire-protocol.md");
  ASSERT_TRUE(doc.is_open()) << "docs/wire-protocol.md not found";
  std::map<std::string, std::string> documented;
  std::string line;
  while (std::getline(doc, line)) {
    if (line.empty() || line[0] != '|') continue;
    std::vector<std::string> ticked;
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      const size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      ticked.push_back(line.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
    if (ticked.size() >= 2) documented[ticked[0]] = ticked[1];
  }
  auto expect_value = [&](const std::string& name, uint64_t value) {
    auto it = documented.find(name);
    ASSERT_NE(it, documented.end())
        << "`" << name << "` missing from docs/wire-protocol.md";
    EXPECT_EQ(std::stoull(it->second, nullptr, 0), value)
        << "`" << name << "` documented as " << it->second;
  };
  expect_value("kMagic", wire::kMagic);
  expect_value("kHeaderBytes", wire::kHeaderBytes);
  expect_value("kVersion", wire::kVersion);
  expect_value("kMinVersion", wire::kMinVersion);
  expect_value("kMinServiceVersion", wire::kMinServiceVersion);
  expect_value("kFlagEncodedPayload", wire::kFlagEncodedPayload);
  expect_value("kTagMask", wire::kTagMask);
  expect_value("kQueryRequest",
               static_cast<uint64_t>(wire::MessageType::kQueryRequest));
  expect_value("kQueryResult",
               static_cast<uint64_t>(wire::MessageType::kQueryResult));
  expect_value("kCancelRequest",
               static_cast<uint64_t>(wire::MessageType::kCancelRequest));
  expect_value("kProgress",
               static_cast<uint64_t>(wire::MessageType::kProgress));
  expect_value("kQueryVcbc", wire::kQueryVcbc);
  expect_value("kQueryDegreeFilter", wire::kQueryDegreeFilter);
  expect_value("kQueryWantProgress", wire::kQueryWantProgress);
  expect_value("kQueryResultCancelled", wire::kQueryResultCancelled);
  expect_value("kQueryResultPlanCacheHit", wire::kQueryResultPlanCacheHit);
  expect_value("kHelloSupportsQueries", wire::kHelloSupportsQueries);
  expect_value("kHelloSupportsDeltas", wire::kHelloSupportsDeltas);
  expect_value("kQuerySubscribe", wire::kQuerySubscribe);
  expect_value("kApplyDelta",
               static_cast<uint64_t>(wire::MessageType::kApplyDelta));
  expect_value("kEpochAdvance",
               static_cast<uint64_t>(wire::MessageType::kEpochAdvance));
  expect_value("kMatchDelta",
               static_cast<uint64_t>(wire::MessageType::kMatchDelta));
  expect_value("kDeltaAck",
               static_cast<uint64_t>(wire::MessageType::kDeltaAck));
}

// --- FairScheduler ----------------------------------------------------

TEST(FairSchedulerTest, TwoLevelRoundRobin) {
  FairScheduler sched;
  sched.Add(1, 10);
  sched.Add(1, 11);
  sched.Add(2, 20);
  EXPECT_EQ(sched.size(), 3u);
  uint64_t q = 0;
  // Sessions alternate; within session 1 its two queries alternate.
  ASSERT_TRUE(sched.Next(&q));
  EXPECT_EQ(q, 10u);
  ASSERT_TRUE(sched.Next(&q));
  EXPECT_EQ(q, 20u);
  ASSERT_TRUE(sched.Next(&q));
  EXPECT_EQ(q, 11u);
  ASSERT_TRUE(sched.Next(&q));
  EXPECT_EQ(q, 20u);
  ASSERT_TRUE(sched.Next(&q));
  EXPECT_EQ(q, 10u);
  sched.Remove(20);
  ASSERT_TRUE(sched.Next(&q));
  EXPECT_EQ(q, 11u);
  sched.Remove(10);
  sched.Remove(11);
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.Next(&q));
}

// --- QueryEngine ------------------------------------------------------

Count SoloCount(const Graph& graph, const std::string& pattern_name,
                const std::vector<int>& data_labels = {},
                const std::vector<int>& pattern_labels = {}) {
  Graph pattern = std::move(GetPattern(pattern_name)).value();
  BenuOptions options;
  options.data_labels = data_labels;
  options.plan.pattern_labels = pattern_labels;
  auto result = RunBenu(graph, pattern, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->run.total_matches;
}

/// Collects done callbacks (which run with the engine lock held — they
/// only record and notify, never reenter the engine).
struct ResultSink {
  std::mutex mu;
  std::condition_variable cv;
  std::map<uint64_t, wire::QueryResultInfo> results;

  service::QueryDoneFn For(uint64_t key) {
    return [this, key](const wire::QueryResultInfo& info) {
      std::lock_guard<std::mutex> lk(mu);
      results.emplace(key, info);
      cv.notify_all();
    };
  }
  wire::QueryResultInfo Wait(uint64_t key) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return results.count(key) != 0; });
    return results.at(key);
  }
};

TEST(QueryEngineTest, ConcurrentSessionsMatchSoloCounts) {
  const Graph data = std::move(GenerateErdosRenyi(200, 1600, 7)).value();
  const std::vector<std::string> names = {"q5", "q9", "clique4"};
  std::map<std::string, Count> solo;
  for (const auto& name : names) solo[name] = SoloCount(data, name);

  ServiceConfig config;
  config.execution_threads = 4;
  config.max_active_queries = 16;
  config.db_cache_bytes = 8u << 20;
  auto engine = QueryEngine::Create(data, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Three sessions each submit all three patterns, interleaved; every
  // count must equal its solo run bit for bit.
  ResultSink sink;
  std::vector<std::pair<uint64_t, std::string>> submitted;
  uint64_t key = 0;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t session = 1; session <= 3; ++session) {
      const std::string& name = names[(round + session) % names.size()];
      wire::QuerySpec spec;
      spec.pattern = name;
      auto id = (*engine)->Submit(session, spec, sink.For(key));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      submitted.emplace_back(key, name);
      ++key;
    }
  }
  for (const auto& [k, name] : submitted) {
    const wire::QueryResultInfo info = sink.Wait(k);
    EXPECT_FALSE(info.cancelled());
    EXPECT_EQ(info.matches, solo[name]) << name;
  }
  (*engine)->Drain();
  const QueryEngine::EngineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.admitted, 9u);
  EXPECT_EQ(stats.completed, 9u);
  EXPECT_EQ(stats.rejected, 0u);
  // Three distinct plan keys: the other six submits hit the cache.
  EXPECT_EQ(stats.plan_misses, 3u);
  EXPECT_EQ(stats.plan_hits, 6u);
  EXPECT_EQ((*engine)->plan_cache_size(), 3u);
}

TEST(QueryEngineTest, LabeledQueriesMatchSoloCounts) {
  const Graph data = std::move(GenerateErdosRenyi(150, 1200, 11)).value();
  std::vector<int> labels(data.NumVertices());
  for (size_t v = 0; v < labels.size(); ++v) labels[v] = static_cast<int>(v % 3);
  const std::vector<int> pattern_labels = {0, 1, 2};
  const Count solo = SoloCount(data, "triangle", labels, pattern_labels);

  ServiceConfig config;
  config.execution_threads = 2;
  auto engine = QueryEngine::Create(data, config, nullptr, labels);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ResultSink sink;
  wire::QuerySpec spec;
  spec.pattern = "triangle";
  spec.pattern_labels.assign(pattern_labels.begin(), pattern_labels.end());
  auto id = (*engine)->Submit(1, spec, sink.For(0));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(sink.Wait(0).matches, solo);

  // Label arity mismatch and labeled-on-unlabeled are submit-time
  // rejections.
  spec.pattern_labels = {0};
  EXPECT_FALSE((*engine)->Submit(1, spec, nullptr).ok());
  auto unlabeled_engine = QueryEngine::Create(data, config);
  ASSERT_TRUE(unlabeled_engine.ok());
  spec.pattern_labels.assign(pattern_labels.begin(), pattern_labels.end());
  auto rejected = (*unlabeled_engine)->Submit(1, spec, nullptr);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryEngineTest, CancelStopsResultsAndFreesBudget) {
  // A dense graph and τ=8 produce many small tasks, so a cancel lands
  // while tasks are still unclaimed.
  const Graph data = std::move(GenerateErdosRenyi(300, 6000, 13)).value();
  ServiceConfig config;
  config.execution_threads = 2;
  config.task_split_threshold = 8;
  config.memory_budget_bytes = 64u << 20;
  // The governor's lease policy caps one grant at a quarter of usable
  // headroom, so a reservation must stay under ~20% of the budget.
  config.per_query_reserve_bytes = 8u << 20;
  config.db_cache_bytes = 4u << 20;
  auto engine = QueryEngine::Create(data, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const uint64_t pinned_before = (*engine)->governor().pinned_bytes();
  ResultSink sink;
  wire::QuerySpec spec;
  spec.pattern = "q9";
  auto id = (*engine)->Submit(1, spec, sink.For(0));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_GE((*engine)->governor().pinned_bytes(),
            pinned_before + config.per_query_reserve_bytes);
  (*engine)->Cancel(*id);
  const wire::QueryResultInfo info = sink.Wait(0);
  EXPECT_TRUE(info.cancelled());
  (*engine)->Drain();
  // The 8 MiB reservation is released at finalization; whatever stays
  // pinned is bounded by the (much smaller) cache.
  EXPECT_LT((*engine)->governor().pinned_bytes(),
            pinned_before + config.per_query_reserve_bytes);
  EXPECT_EQ((*engine)->stats().cancelled, 1u);

  // The service stays healthy: the same query re-admitted afterwards
  // produces the full solo count.
  auto rerun = (*engine)->Submit(1, spec, sink.For(1));
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  const wire::QueryResultInfo done = sink.Wait(1);
  EXPECT_FALSE(done.cancelled());
  EXPECT_EQ(done.matches, SoloCount(data, "q9"));
  EXPECT_FALSE((*engine)->Cancel(*rerun));  // already finished
}

TEST(QueryEngineTest, AdmissionControlRejectsDeterministically) {
  const Graph data = std::move(GenerateErdosRenyi(100, 800, 17)).value();
  // Active-query cap of zero: every submit is rejected.
  ServiceConfig config;
  config.execution_threads = 1;
  config.max_active_queries = 0;
  auto engine = QueryEngine::Create(data, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  wire::QuerySpec spec;
  spec.pattern = "q5";
  auto rejected = (*engine)->Submit(1, spec, nullptr);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*engine)->stats().rejected, 1u);

  // Compute cap below any plan's estimated cost: rejected before
  // admission, and counted.
  ServiceConfig cost_config;
  cost_config.execution_threads = 1;
  cost_config.max_plan_cost = 1e-9;
  auto cost_engine = QueryEngine::Create(data, cost_config);
  ASSERT_TRUE(cost_engine.ok());
  auto cost_rejected = (*cost_engine)->Submit(1, spec, nullptr);
  ASSERT_FALSE(cost_rejected.ok());
  EXPECT_EQ(cost_rejected.status().code(), StatusCode::kResourceExhausted);

  // Unknown pattern: kNotFound, also a counted rejection.
  wire::QuerySpec unknown;
  unknown.pattern = "no-such-pattern";
  auto not_found = (*engine)->Submit(1, unknown, nullptr);
  ASSERT_FALSE(not_found.ok());
  EXPECT_EQ((*engine)->stats().rejected, 2u);
}

TEST(QueryEngineTest, TransportHashValidationMirrorsRunBenu) {
  const Graph data = std::move(GenerateErdosRenyi(120, 900, 19)).value();
  ServiceConfig config;
  config.execution_threads = 1;
  // A transport serving the unrelabeled graph cannot back a relabeling
  // engine: the attested hash differs.
  auto mismatched = QueryEngine::Create(
      data, config, MakeLoopbackTransport(data, 4, true));
  EXPECT_FALSE(mismatched.ok());
  // Serving the relabeled graph works, and counts still match solo.
  const Graph relabeled = data.RelabelByDegree();
  auto engine = QueryEngine::Create(
      data, config, MakeLoopbackTransport(relabeled, 4, true));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ResultSink sink;
  wire::QuerySpec spec;
  spec.pattern = "q5";
  ASSERT_TRUE((*engine)->Submit(1, spec, sink.For(0)).ok());
  EXPECT_EQ(sink.Wait(0).matches, SoloCount(data, "q5"));
}

// --- TCP front end ----------------------------------------------------

std::unique_ptr<ServiceTcpServer> StartServer(const Graph& data,
                                              const ServiceConfig& config) {
  auto engine = QueryEngine::Create(data, config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  auto server = std::make_unique<ServiceTcpServer>(std::move(*engine));
  EXPECT_TRUE(server->Listen(0).ok());
  EXPECT_TRUE(server->Start().ok());
  return server;
}

TEST(ServiceServerTest, ConcurrentClientsGetSoloCounts) {
  const Graph data = std::move(GenerateErdosRenyi(200, 1600, 23)).value();
  const std::vector<std::string> names = {"q5", "q9", "clique4"};
  std::map<std::string, Count> solo;
  for (const auto& name : names) solo[name] = SoloCount(data, name);

  ServiceConfig config;
  config.execution_threads = 4;
  config.max_active_queries = 16;
  auto server = StartServer(data, config);

  // Three clients, each overlapping all three patterns in flight on one
  // connection, driven from three threads at once.
  std::vector<std::future<void>> clients;
  for (int c = 0; c < 3; ++c) {
    clients.push_back(std::async(std::launch::async, [&, c] {
      auto client = ServiceClient::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      EXPECT_EQ((*client)->hello().num_vertices, data.NumVertices());
      std::vector<uint16_t> tags;
      for (const auto& name : names) {
        wire::QuerySpec spec;
        spec.pattern = name;
        auto tag = (*client)->StartQuery(spec);
        ASSERT_TRUE(tag.ok()) << tag.status().ToString();
        tags.push_back(*tag);
      }
      for (size_t i = 0; i < names.size(); ++i) {
        auto result = (*client)->Await(tags[i]);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result->matches, solo[names[i]]) << names[i] << " client "
                                                   << c;
      }
    }));
  }
  for (auto& f : clients) f.get();
  EXPECT_EQ(server->engine().stats().completed, 9u);
}

TEST(ServiceServerTest, CancelOverTheWire) {
  const Graph data = std::move(GenerateErdosRenyi(300, 6000, 29)).value();
  ServiceConfig config;
  config.execution_threads = 2;
  config.task_split_threshold = 8;
  auto server = StartServer(data, config);
  auto client = ServiceClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  wire::QuerySpec spec;
  spec.pattern = "q9";
  auto tag = (*client)->StartQuery(spec);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE((*client)->SendCancel(*tag).ok());
  auto result = (*client)->Await(*tag);
  // Either the cancel landed (cancelled flag) or the query completed
  // first; both are clean outcomes, and the session must stay usable.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rerun = (*client)->Execute(spec);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->matches, SoloCount(data, "q9"));

  // Cancelling a tag with nothing in flight is answered kNotFound
  // without hurting the connection.
  std::vector<uint8_t> cancel;
  wire::AppendCancelRequest(&cancel);
  wire::SetFrameTag(cancel, 0x7ABC);
  // (Sent through a second raw connection so the client's tag table is
  // not confused.)
  auto fd = net::TcpConnect("127.0.0.1", server->port(), 5000);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::WriteAll(*fd, cancel, 5000).ok());
  std::vector<uint8_t> reply;
  ASSERT_TRUE(net::ReadWireFrame(*fd, &reply, 5000).ok());
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kError);
  EXPECT_EQ(wire::DecodeError(*frame).code(), StatusCode::kNotFound);
  net::CloseFd(*fd);
}

TEST(ServiceServerTest, MalformedQueryFrameDoesNotPoisonSession) {
  const Graph data = std::move(GenerateErdosRenyi(150, 1200, 31)).value();
  ServiceConfig config;
  config.execution_threads = 2;
  auto server = StartServer(data, config);

  auto fd = net::TcpConnect("127.0.0.1", server->port(), 5000);
  ASSERT_TRUE(fd.ok());

  // A well-delimited kQueryRequest with a garbage body: tagged kError,
  // connection survives.
  std::vector<uint8_t> bad;
  wire::AppendHeader(wire::MessageType::kQueryRequest, 0, 4, &bad);
  bad.resize(bad.size() + 4, 0xEE);
  wire::SetFrameTag(bad, 99);
  ASSERT_TRUE(net::WriteAll(*fd, bad, 5000).ok());
  std::vector<uint8_t> reply;
  ASSERT_TRUE(net::ReadWireFrame(*fd, &reply, 5000).ok());
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kError);
  EXPECT_EQ(wire::FrameTag(reply), 99);

  // The same connection still serves a valid query afterwards.
  wire::QuerySpec spec;
  spec.pattern = "q1";
  std::vector<uint8_t> good;
  wire::AppendQueryRequest(spec, &good);
  wire::SetFrameTag(good, 100);
  ASSERT_TRUE(net::WriteAll(*fd, good, 5000).ok());
  ASSERT_TRUE(net::ReadWireFrame(*fd, &reply, 10000).ok());
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->header.type, wire::MessageType::kQueryResult);
  EXPECT_EQ(wire::FrameTag(reply), 100);
  auto info = wire::DecodeQueryResult(*frame);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->matches, SoloCount(data, "q1"));

  // Undecipherable bytes (bad magic): the server kills the connection.
  const uint8_t junk[16] = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(net::WriteAll(*fd, junk, 5000).ok());
  EXPECT_FALSE(net::ReadWireFrame(*fd, &reply, 5000).ok());
  net::CloseFd(*fd);
}

TEST(ServiceServerTest, ProgressFramesArriveForLongQueries) {
  const Graph data = std::move(GenerateErdosRenyi(300, 6000, 37)).value();
  ServiceConfig config;
  config.execution_threads = 2;
  config.task_split_threshold = 8;
  config.progress_interval_tasks = 4;
  auto server = StartServer(data, config);
  auto client = ServiceClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  std::atomic<int> progress_frames{0};
  wire::QuerySpec spec;
  spec.pattern = "q9";
  spec.options = wire::kQueryWantProgress;
  auto result = (*client)->Execute(spec, [&](const wire::QueryProgress& p) {
    EXPECT_LE(p.tasks_done, p.tasks_total);
    progress_frames.fetch_add(1);
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->matches, SoloCount(data, "q9"));
  EXPECT_GT(progress_frames.load(), 0);
}

// --- subscribe mode (dynamic graphs) ----------------------------------

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

std::pair<VertexId, VertexId> Norm(VertexId u, VertexId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

EdgeSet EdgesOf(const Graph& g) {
  const auto edges = g.Edges();
  EdgeSet out;
  for (const auto& [u, v] : edges) out.insert(Norm(u, v));
  return out;
}

/// Independent reference: a fresh graph from the current edge set, run
/// through the one-shot driver — no versioned store, no incremental plans.
Count Recount(const std::string& pattern, size_t num_vertices,
              const EdgeSet& edges) {
  Graph g = std::move(Graph::FromEdges(num_vertices,
                                       {edges.begin(), edges.end()}))
                .value();
  return SoloCount(g, pattern);
}

/// First `count` absent vertex pairs in lexicographic order, applied to
/// `edges` as the caller's mirror of the mutation.
std::vector<EdgeDelta> TakeInsertions(EdgeSet* edges, size_t num_vertices,
                                      size_t count) {
  std::vector<EdgeDelta> ops;
  for (VertexId u = 0; u < static_cast<VertexId>(num_vertices); ++u) {
    for (VertexId v = u + 1; v < static_cast<VertexId>(num_vertices); ++v) {
      if (ops.size() == count) return ops;
      if (edges->count({u, v}) != 0) continue;
      ops.push_back({u, v, /*insert=*/true});
      edges->insert({u, v});
    }
  }
  return ops;
}

/// First `count` present edges, removed from `edges` and returned as
/// deletion ops.
std::vector<EdgeDelta> TakeDeletions(EdgeSet* edges, size_t count) {
  std::vector<EdgeDelta> ops;
  while (ops.size() < count && !edges->empty()) {
    const auto [u, v] = *edges->begin();
    ops.push_back({u, v, /*insert=*/false});
    edges->erase(edges->begin());
  }
  return ops;
}

/// Records every done-callback fire (subscriptions fire twice: baseline,
/// then terminal) and every match delta.
struct SubscribeSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<wire::QueryResultInfo> fires;
  std::vector<wire::MatchDelta> deltas;

  service::QueryDoneFn Done() {
    return [this](const wire::QueryResultInfo& info) {
      std::lock_guard<std::mutex> lk(mu);
      fires.push_back(info);
      cv.notify_all();
    };
  }
  service::QueryDeltaFn Delta() {
    return [this](const wire::MatchDelta& d) {
      std::lock_guard<std::mutex> lk(mu);
      deltas.push_back(d);
      cv.notify_all();
    };
  }
  wire::QueryResultInfo WaitFire(size_t index) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return fires.size() > index; });
    return fires[index];
  }
  wire::MatchDelta WaitDelta(size_t index) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return deltas.size() > index; });
    return deltas[index];
  }
};

TEST(QueryEngineSubscribeTest, IncrementalTotalsMatchRecompute) {
  const Graph data = std::move(GenerateErdosRenyi(80, 400, 43)).value();
  const size_t n = data.NumVertices();
  ServiceConfig config;
  config.execution_threads = 2;
  auto engine = QueryEngine::Create(data, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Subscribe + VCBC is a submit-time rejection (codes cannot be
  // retracted), as are labeled subscriptions.
  wire::QuerySpec bad;
  bad.pattern = "triangle";
  bad.options = wire::kQueryVcbc | wire::kQuerySubscribe;
  auto rejected = (*engine)->Submit(1, bad, nullptr);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  SubscribeSink sink;
  wire::QuerySpec spec;
  spec.pattern = "triangle";
  spec.options = wire::kQuerySubscribe;
  auto id = (*engine)->Submit(1, spec, sink.Done(), nullptr, sink.Delta());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Baseline fire is non-terminal and exact.
  EdgeSet edges = EdgesOf(data);
  const wire::QueryResultInfo baseline = sink.WaitFire(0);
  EXPECT_FALSE(baseline.cancelled());
  EXPECT_EQ(baseline.matches, Recount("triangle", n, edges));
  EXPECT_EQ((*engine)->stats().subscriptions, 1u);

  // Deltas target epoch()+1 with in-universe endpoints, in original ids.
  const EdgeDelta out_of_universe{static_cast<VertexId>(n + 5), 0, true};
  EXPECT_EQ((*engine)
                ->StageDelta(1, std::span<const EdgeDelta>(&out_of_universe, 1))
                .code(),
            StatusCode::kInvalidArgument);
  std::vector<EdgeDelta> ins = TakeInsertions(&edges, n, 12);
  EXPECT_EQ((*engine)->StageDelta(7, ins).code(),
            StatusCode::kFailedPrecondition);

  // Epoch 1: insertions. The streamed total matches a recompute.
  ASSERT_TRUE((*engine)->StageDelta(1, ins).ok());
  auto e1 = (*engine)->CommitEpoch(1);
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  EXPECT_EQ(*e1, 1u);
  EXPECT_EQ((*engine)->epoch(), 1u);
  const wire::MatchDelta d1 = sink.WaitDelta(0);
  EXPECT_EQ(d1.epoch, 1u);
  EXPECT_EQ(d1.total, baseline.matches + d1.added - d1.retracted);
  EXPECT_EQ(d1.total, Recount("triangle", n, edges));

  // Epoch 2: deletions retract matches through the same plans.
  std::vector<EdgeDelta> del = TakeDeletions(&edges, 24);
  ASSERT_TRUE((*engine)->StageDelta(2, del).ok());
  auto e2 = (*engine)->CommitEpoch(2);
  ASSERT_TRUE(e2.ok()) << e2.status().ToString();
  const wire::MatchDelta d2 = sink.WaitDelta(1);
  EXPECT_EQ(d2.epoch, 2u);
  EXPECT_EQ(d2.total, d1.total + d2.added - d2.retracted);
  EXPECT_EQ(d2.total, Recount("triangle", n, edges));
  EXPECT_GT(d2.retracted, 0u);

  // Cancel terminates the subscription: the second done fire carries the
  // cancelled flag and the last maintained total.
  EXPECT_TRUE((*engine)->Cancel(*id));
  const wire::QueryResultInfo terminal = sink.WaitFire(1);
  EXPECT_TRUE(terminal.cancelled());
  EXPECT_EQ(terminal.matches, d2.total);
  EXPECT_EQ((*engine)->stats().subscriptions, 0u);
  (*engine)->Drain();
}

TEST(ServiceServerTest, SubscribeOverTheWire) {
  const Graph data = std::move(GenerateErdosRenyi(80, 400, 47)).value();
  const size_t n = data.NumVertices();
  ServiceConfig config;
  config.execution_threads = 2;
  auto server = StartServer(data, config);
  auto client = ServiceClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_NE((*client)->hello().flags & wire::kHelloSupportsDeltas, 0u);
  EXPECT_EQ((*client)->hello().epoch, 0u);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<wire::MatchDelta> deltas;
  wire::QuerySpec spec;
  spec.pattern = "triangle";
  auto tag = (*client)->Subscribe(spec, [&](const wire::MatchDelta& d) {
    std::lock_guard<std::mutex> lk(mu);
    deltas.push_back(d);
    cv.notify_all();
  });
  ASSERT_TRUE(tag.ok()) << tag.status().ToString();

  EdgeSet edges = EdgesOf(data);
  auto baseline = (*client)->AwaitBaseline(*tag);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->matches, Recount("triangle", n, edges));

  // Epoch 1 over the wire: push, advance, receive the kMatchDelta.
  std::vector<EdgeDelta> ins = TakeInsertions(&edges, n, 12);
  auto staged = (*client)->PushDelta(1, ins);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_EQ(*staged, 0u);  // staging does not advance the epoch
  auto e1 = (*client)->AdvanceEpoch(1);
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  EXPECT_EQ(*e1, 1u);
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return deltas.size() >= 1; });
    EXPECT_EQ(deltas[0].epoch, 1u);
    EXPECT_EQ(deltas[0].total, Recount("triangle", n, edges));
  }

  // Epoch 2: deletions retract over the wire too.
  std::vector<EdgeDelta> del = TakeDeletions(&edges, 24);
  ASSERT_TRUE((*client)->PushDelta(2, del).ok());
  ASSERT_TRUE((*client)->AdvanceEpoch(2).ok());
  uint64_t maintained = 0;
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return deltas.size() >= 2; });
    EXPECT_EQ(deltas[1].epoch, 2u);
    EXPECT_GT(deltas[1].retracted, 0u);
    EXPECT_EQ(deltas[1].total, Recount("triangle", n, edges));
    maintained = deltas[1].total;
  }

  // A wrong-target advance is a tagged error; the connection survives.
  EXPECT_FALSE((*client)->AdvanceEpoch(9).ok());

  // Cancel retires the subscription with the maintained total.
  ASSERT_TRUE((*client)->SendCancel(*tag).ok());
  auto terminal = (*client)->Await(*tag);
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  EXPECT_TRUE(terminal->cancelled());
  EXPECT_EQ(terminal->matches, maintained);

  // The same connection still serves one-shot queries, and they see the
  // post-delta graph.
  wire::QuerySpec oneshot;
  oneshot.pattern = "q5";
  auto rerun = (*client)->Execute(oneshot);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->matches, Recount("q5", n, edges));
}

// --- service.* metrics docs coverage ----------------------------------

// Every service.* instrument the engine can emit must be documented in
// docs/metrics.md (same backtick convention as the global metrics test).
TEST(ServiceMetricsTest, DocsListEveryServiceInstrument) {
  metrics::SetTracingEnabled(true);
  const Graph data = std::move(GenerateErdosRenyi(100, 800, 41)).value();
  ServiceConfig config;
  config.execution_threads = 2;
  config.max_active_queries = 0;  // force one rejection too
  {
    auto rejecting = QueryEngine::Create(data, config);
    ASSERT_TRUE(rejecting.ok());
    wire::QuerySpec spec;
    spec.pattern = "q5";
    (void)(*rejecting)->Submit(1, spec, nullptr);
  }
  config.max_active_queries = 4;
  {
    auto engine = QueryEngine::Create(data, config);
    ASSERT_TRUE(engine.ok());
    ResultSink sink;
    wire::QuerySpec spec;
    spec.pattern = "q5";
    auto a = (*engine)->Submit(1, spec, sink.For(0));
    ASSERT_TRUE(a.ok());
    sink.Wait(0);
    auto b = (*engine)->Submit(1, spec, sink.For(1));  // plan-cache hit
    ASSERT_TRUE(b.ok());
    (*engine)->Cancel(*b);
    (*engine)->Drain();
  }
  metrics::SetTracingEnabled(false);

  std::ifstream docs(std::string(BENU_SOURCE_DIR) + "/docs/metrics.md");
  ASSERT_TRUE(docs.is_open()) << "docs/metrics.md not found";
  std::set<std::string> documented;
  std::string line;
  while (std::getline(docs, line)) {
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      const size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      documented.insert(line.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
  }
  const metrics::MetricsSnapshot snapshot =
      metrics::MetricsRegistry::Global().Snapshot();
  size_t service_instruments = 0;
  for (const auto& entry : snapshot.entries) {
    if (entry.name.rfind("service.", 0) != 0) continue;
    ++service_instruments;
    EXPECT_TRUE(documented.count(entry.name) == 1)
        << "instrument `" << entry.name
        << "` is emitted but not documented in docs/metrics.md";
  }
  // The registry must actually contain the service family (the coverage
  // loop above is vacuous otherwise).
  EXPECT_GE(service_instruments, 8u);
}

}  // namespace
}  // namespace benu
