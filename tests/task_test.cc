#include "distributed/task.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/plan_search.h"

namespace benu {
namespace {

ExecutionPlan PlanFor(const std::string& name, const Graph& data) {
  Graph p = std::move(GetPattern(name)).value();
  auto result = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  EXPECT_TRUE(result.ok());
  return std::move(result)->plan;
}

TEST(TaskTest, NoSplittingOneTaskPerVertex) {
  auto data = GenerateBarabasiAlbert(200, 4, 1);
  ASSERT_TRUE(data.ok());
  ExecutionPlan plan = PlanFor("triangle", *data);
  auto tasks = GenerateSearchTasks(*data, plan, 0);
  EXPECT_EQ(tasks.size(), data->NumVertices());
  for (const SearchTask& t : tasks) {
    EXPECT_EQ(t.num_subtasks, 1u);
    EXPECT_EQ(t.subtask_index, 0u);
  }
}

TEST(TaskTest, HeavyVerticesAreSplit) {
  Graph star = MakeStar(100).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 10);
  // The hub (degree 100) splits into ⌈100/10⌉ = 10 subtasks when the
  // first two matching-order vertices are adjacent (true for triangle).
  EXPECT_EQ(tasks.size(), 100u /*leaves*/ + 10u /*hub subtasks*/);
}

TEST(TaskTest, SubtaskIndicesAreComplete) {
  Graph star = MakeStar(50).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 7);
  // Every (start, num_subtasks) group has contiguous subtask indices.
  std::map<VertexId, std::vector<uint32_t>> groups;
  for (const SearchTask& t : tasks) {
    groups[t.start].push_back(t.subtask_index);
  }
  for (auto& [start, indices] : groups) {
    std::sort(indices.begin(), indices.end());
    for (size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(indices[i], i) << "start " << start;
    }
  }
}

TEST(TaskTest, ThresholdBoundary) {
  // Degree exactly τ is split (d ≥ τ per §V-B).
  Graph star = MakeStar(10).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 10);
  size_t hub_tasks = 0;
  for (const SearchTask& t : tasks) {
    if (star.Degree(t.start) == 10) ++hub_tasks;
  }
  EXPECT_EQ(hub_tasks, 1u);  // ⌈10/10⌉ = 1 subtask, still "split"
}

TEST(WorkStealingSchedulerTest, SingleThreadClaimsAllInOrder) {
  WorkStealingScheduler scheduler(5, 1);
  size_t index = 0;
  bool stolen = true;
  for (size_t expected = 0; expected < 5; ++expected) {
    ASSERT_TRUE(scheduler.Claim(0, &index, &stolen));
    EXPECT_EQ(index, expected);
    EXPECT_FALSE(stolen);
  }
  EXPECT_FALSE(scheduler.Claim(0, &index, &stolen));
}

TEST(WorkStealingSchedulerTest, DrainedOwnerStealsFromSibling) {
  // Round-robin deal over 2 threads: thread 0 owns {0,2,4,6}, thread 1
  // owns {1,3,5,7}. Thread 0 claims everything; once its own deque is
  // dry it must steal thread 1's tasks from the back.
  WorkStealingScheduler scheduler(8, 2);
  std::vector<size_t> own, stolen_tasks;
  size_t index = 0;
  bool stolen = false;
  while (scheduler.Claim(0, &index, &stolen)) {
    (stolen ? stolen_tasks : own).push_back(index);
  }
  EXPECT_EQ(own, (std::vector<size_t>{0, 2, 4, 6}));
  // Steals come from the victim's back: 7, 5, 3, 1.
  EXPECT_EQ(stolen_tasks, (std::vector<size_t>{7, 5, 3, 1}));
  EXPECT_FALSE(scheduler.Claim(1, &index, &stolen));
}

TEST(WorkStealingSchedulerTest, StealsTargetTheMostLoadedSibling) {
  // Thread 1 drains its own deque first; its steal must then come from
  // whichever sibling has the most tasks left (thread 0 or 2 both start
  // with 4; after thread 0 claims twice, thread 2 is the most loaded).
  WorkStealingScheduler scheduler(12, 3);  // t0:{0,3,6,9} t1:{1,4,7,10} t2:{2,5,8,11}
  size_t index = 0;
  bool stolen = false;
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(scheduler.Claim(0, &index, &stolen));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(scheduler.Claim(1, &index, &stolen));
  ASSERT_TRUE(scheduler.Claim(1, &index, &stolen));
  EXPECT_TRUE(stolen);
  EXPECT_EQ(index, 11u);  // back of thread 2's deque
}

TEST(WorkStealingSchedulerTest, ConcurrentClaimsCoverEveryTaskOnce) {
  constexpr size_t kTasks = 2000;
  constexpr size_t kThreads = 4;
  WorkStealingScheduler scheduler(kTasks, kThreads);
  std::vector<std::vector<size_t>> claimed(kThreads);
  ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([&scheduler, &claimed, t] {
      size_t index = 0;
      while (scheduler.Claim(t, &index, nullptr)) {
        claimed[t].push_back(index);
      }
    });
  }
  pool.Wait();
  std::vector<size_t> all;
  for (const auto& c : claimed) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kTasks);
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(all[i], i);
}

}  // namespace
}  // namespace benu
