#include "distributed/task.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/plan_search.h"

namespace benu {
namespace {

ExecutionPlan PlanFor(const std::string& name, const Graph& data) {
  Graph p = std::move(GetPattern(name)).value();
  auto result = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  EXPECT_TRUE(result.ok());
  return std::move(result)->plan;
}

TEST(TaskTest, NoSplittingOneTaskPerVertex) {
  auto data = GenerateBarabasiAlbert(200, 4, 1);
  ASSERT_TRUE(data.ok());
  ExecutionPlan plan = PlanFor("triangle", *data);
  auto tasks = GenerateSearchTasks(*data, plan, 0);
  EXPECT_EQ(tasks.size(), data->NumVertices());
  for (const SearchTask& t : tasks) {
    EXPECT_EQ(t.num_subtasks, 1u);
    EXPECT_EQ(t.subtask_index, 0u);
  }
}

TEST(TaskTest, HeavyVerticesAreSplit) {
  Graph star = MakeStar(100).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 10);
  // The hub (degree 100) splits into ⌈100/10⌉ = 10 subtasks when the
  // first two matching-order vertices are adjacent (true for triangle).
  EXPECT_EQ(tasks.size(), 100u /*leaves*/ + 10u /*hub subtasks*/);
}

TEST(TaskTest, SubtaskIndicesAreComplete) {
  Graph star = MakeStar(50).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 7);
  // Every (start, num_subtasks) group has contiguous subtask indices.
  std::map<VertexId, std::vector<uint32_t>> groups;
  for (const SearchTask& t : tasks) {
    groups[t.start].push_back(t.subtask_index);
  }
  for (auto& [start, indices] : groups) {
    std::sort(indices.begin(), indices.end());
    for (size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(indices[i], i) << "start " << start;
    }
  }
}

TEST(TaskTest, ThresholdBoundary) {
  // Degree exactly τ is split (d ≥ τ per §V-B).
  Graph star = MakeStar(10).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 10);
  size_t hub_tasks = 0;
  for (const SearchTask& t : tasks) {
    if (star.Degree(t.start) == 10) ++hub_tasks;
  }
  EXPECT_EQ(hub_tasks, 1u);  // ⌈10/10⌉ = 1 subtask, still "split"
}

}  // namespace
}  // namespace benu
