#include "distributed/task.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/plan_search.h"

namespace benu {
namespace {

ExecutionPlan PlanFor(const std::string& name, const Graph& data) {
  Graph p = std::move(GetPattern(name)).value();
  auto result = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  EXPECT_TRUE(result.ok());
  return std::move(result)->plan;
}

TEST(TaskTest, NoSplittingOneTaskPerVertex) {
  auto data = GenerateBarabasiAlbert(200, 4, 1);
  ASSERT_TRUE(data.ok());
  ExecutionPlan plan = PlanFor("triangle", *data);
  auto tasks = GenerateSearchTasks(*data, plan, 0);
  EXPECT_EQ(tasks.size(), data->NumVertices());
  for (const SearchTask& t : tasks) {
    EXPECT_EQ(t.num_subtasks, 1u);
    EXPECT_EQ(t.subtask_index, 0u);
  }
}

TEST(TaskTest, HeavyVerticesAreSplit) {
  Graph star = MakeStar(100).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 10);
  // The hub (degree 100) splits into ⌈100/10⌉ = 10 subtasks when the
  // first two matching-order vertices are adjacent (true for triangle).
  EXPECT_EQ(tasks.size(), 100u /*leaves*/ + 10u /*hub subtasks*/);
}

TEST(TaskTest, SubtaskIndicesAreComplete) {
  Graph star = MakeStar(50).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 7);
  // Every (start, num_subtasks) group has contiguous subtask indices.
  std::map<VertexId, std::vector<uint32_t>> groups;
  for (const SearchTask& t : tasks) {
    groups[t.start].push_back(t.subtask_index);
  }
  for (auto& [start, indices] : groups) {
    std::sort(indices.begin(), indices.end());
    for (size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(indices[i], i) << "start " << start;
    }
  }
}

TEST(TaskTest, ThresholdBoundary) {
  // Degree exactly τ is split (d ≥ τ per §V-B).
  Graph star = MakeStar(10).RelabelByDegree();
  ExecutionPlan plan = PlanFor("triangle", star);
  auto tasks = GenerateSearchTasks(star, plan, 10);
  size_t hub_tasks = 0;
  for (const SearchTask& t : tasks) {
    if (star.Degree(t.start) == 10) ++hub_tasks;
  }
  EXPECT_EQ(hub_tasks, 1u);  // ⌈10/10⌉ = 1 subtask, still "split"
}

TEST(WorkStealingSchedulerTest, SingleThreadClaimsAllInOrder) {
  WorkStealingScheduler scheduler(5, 1);
  size_t index = 0;
  bool stolen = true;
  for (size_t expected = 0; expected < 5; ++expected) {
    ASSERT_TRUE(scheduler.Claim(0, &index, &stolen));
    EXPECT_EQ(index, expected);
    EXPECT_FALSE(stolen);
  }
  EXPECT_FALSE(scheduler.Claim(0, &index, &stolen));
}

TEST(WorkStealingSchedulerTest, DrainedOwnerStealsFromSibling) {
  // Round-robin deal over 2 threads: thread 0 owns {0,2,4,6}, thread 1
  // owns {1,3,5,7}. Thread 0 claims everything; once its own deque is
  // dry it must steal thread 1's tasks from the back.
  WorkStealingScheduler scheduler(8, 2);
  std::vector<size_t> own, stolen_tasks;
  size_t index = 0;
  bool stolen = false;
  while (scheduler.Claim(0, &index, &stolen)) {
    (stolen ? stolen_tasks : own).push_back(index);
  }
  EXPECT_EQ(own, (std::vector<size_t>{0, 2, 4, 6}));
  // Steals come from the victim's back: 7, 5, 3, 1.
  EXPECT_EQ(stolen_tasks, (std::vector<size_t>{7, 5, 3, 1}));
  EXPECT_FALSE(scheduler.Claim(1, &index, &stolen));
}

TEST(WorkStealingSchedulerTest, StealsTargetTheMostLoadedSibling) {
  // Thread 1 drains its own deque first; its steal must then come from
  // whichever sibling has the most tasks left (thread 0 or 2 both start
  // with 4; after thread 0 claims twice, thread 2 is the most loaded).
  WorkStealingScheduler scheduler(12, 3);  // t0:{0,3,6,9} t1:{1,4,7,10} t2:{2,5,8,11}
  size_t index = 0;
  bool stolen = false;
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(scheduler.Claim(0, &index, &stolen));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(scheduler.Claim(1, &index, &stolen));
  ASSERT_TRUE(scheduler.Claim(1, &index, &stolen));
  EXPECT_TRUE(stolen);
  EXPECT_EQ(index, 11u);  // back of thread 2's deque
}

TEST(WorkStealingSchedulerTest, HeterogeneousCostsRebalanceOntoSiblings) {
  // One giant subtree plus many tiny tasks: whichever thread claims task
  // 0 blocks on it until every other task in the system has been claimed
  // — the way one heavy ENU subtree pins its execution thread in a real
  // run. The remaining threads must drain their own deques and then
  // steal the blocked thread's entire backlog: no task lost, none
  // claimed twice, and the steal count shows the rebalancing happened.
  constexpr size_t kTasks = 400;
  constexpr size_t kThreads = 4;
  WorkStealingScheduler scheduler(kTasks, kThreads);
  std::atomic<size_t> total_claimed{0};
  std::vector<std::vector<size_t>> claimed(kThreads);
  std::vector<size_t> steals(kThreads, 0);
  ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([&scheduler, &total_claimed, &claimed, &steals, t] {
      size_t index = 0;
      bool stolen = false;
      while (scheduler.Claim(t, &index, &stolen)) {
        claimed[t].push_back(index);
        if (stolen) ++steals[t];
        total_claimed.fetch_add(1, std::memory_order_acq_rel);
        if (index == 0) {
          // The giant subtree. Deadline-bounded so a scheduler bug that
          // loses tasks fails the assertions below instead of hanging
          // the suite.
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(30);
          while (total_claimed.load(std::memory_order_acquire) < kTasks &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  pool.Wait();

  std::vector<size_t> all;
  size_t total_steals = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    all.insert(all.end(), claimed[t].begin(), claimed[t].end());
    total_steals += steals[t];
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kTasks) << "tasks lost or claimed twice";
  for (size_t i = 0; i < kTasks; ++i) ASSERT_EQ(all[i], i);
  // The blocked thread's backlog (its round-robin share minus the giant
  // task itself) can only have moved through steals.
  EXPECT_GE(total_steals, kTasks / kThreads - 1);
}

TEST(WorkStealingSchedulerTest, ConcurrentClaimsCoverEveryTaskOnce) {
  constexpr size_t kTasks = 2000;
  constexpr size_t kThreads = 4;
  WorkStealingScheduler scheduler(kTasks, kThreads);
  std::vector<std::vector<size_t>> claimed(kThreads);
  ThreadPool pool(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    pool.Submit([&scheduler, &claimed, t] {
      size_t index = 0;
      while (scheduler.Claim(t, &index, nullptr)) {
        claimed[t].push_back(index);
      }
    });
  }
  pool.Wait();
  std::vector<size_t> all;
  for (const auto& c : claimed) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kTasks);
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(all[i], i);
}

}  // namespace
}  // namespace benu
