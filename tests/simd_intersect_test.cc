// Differential and property tests for the vectorized intersection kernel
// layer: every kernel (plain, size-counting, fused-filter) must produce
// bit-identical results under the AVX2 path and the portable scalar path,
// across size ratios that cross both the SIMD minimum and the galloping
// threshold. Run twice by ctest: once as-is and once with
// BENU_DISABLE_SIMD=1 (simd_intersect_test_scalar), so the portable
// fallback stays covered even on AVX2 CI machines.

#include "graph/simd_intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "common/rng.h"
#include "graph/vertex_set.h"

namespace benu {
namespace {

VertexSet Make(std::initializer_list<VertexId> values) {
  return VertexSet(values);
}

// Random strictly-ascending set of roughly `size` elements drawn from
// [0, universe).
VertexSet RandomSorted(Rng* rng, size_t size, uint64_t universe) {
  VertexSet s;
  s.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    s.push_back(static_cast<VertexId>(rng->NextBounded(universe)));
  }
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

VertexSet ReferenceIntersection(const VertexSet& a, const VertexSet& b) {
  VertexSet expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  return expected;
}

// Restores the startup kernel selection after a test flips it.
class SimdStateGuard {
 public:
  SimdStateGuard() : was_enabled_(simd::SimdEnabled()) {}
  ~SimdStateGuard() { simd::SetSimdEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

TEST(SimdDispatchTest, DisableForcesScalarKernel) {
  SimdStateGuard guard;
  simd::SetSimdEnabled(false);
  EXPECT_FALSE(simd::SimdEnabled());
  EXPECT_STREQ(simd::ActiveKernelName(), "scalar");
  // Re-enabling only works where AVX2 exists; either way the reported
  // kernel name must agree with the flag.
  const bool enabled = simd::SetSimdEnabled(true);
  EXPECT_EQ(simd::SimdEnabled(), enabled);
  EXPECT_STREQ(simd::ActiveKernelName(), enabled ? "avx2" : "scalar");
}

TEST(SimdIntersectTest, RawKernelMatchesReferenceAcrossShapes) {
  Rng rng(20260806);
  // Sizes chosen to cover: below the 8-lane block, exact block multiples,
  // ragged tails, and both sides of the galloping ratio (32).
  const size_t sizes[] = {0, 1, 7, 8, 9, 16, 64, 100, 512, 1000, 4096};
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      // Universe sized for a mix of dense and sparse overlaps.
      const uint64_t universe = std::max<uint64_t>(4, (na + nb) * 2);
      VertexSet a = RandomSorted(&rng, na, universe);
      VertexSet b = RandomSorted(&rng, nb, universe);
      VertexSet expected = ReferenceIntersection(a, b);
      VertexSet out(std::min(a.size(), b.size()) + 8);
      const size_t n = simd::IntersectAvx2(a.data(), a.size(), b.data(),
                                           b.size(), out.data());
      out.resize(n);
      EXPECT_EQ(out, expected) << "na=" << na << " nb=" << nb;
      EXPECT_EQ(simd::IntersectSizeAvx2(a.data(), a.size(), b.data(),
                                        b.size(), SIZE_MAX),
                expected.size());
    }
  }
}

TEST(SimdIntersectTest, DispatcherIdenticalUnderBothKernels) {
  SimdStateGuard guard;
  Rng rng(97);
  for (int trial = 0; trial < 300; ++trial) {
    // Size ratios from 1:1 to ~1:1000, crossing the gallop threshold.
    const size_t small_size = 1 + rng.NextBounded(300);
    const size_t ratio = 1 + rng.NextBounded(1000);
    VertexSet a = RandomSorted(&rng, small_size, 8 * small_size * ratio);
    VertexSet b = RandomSorted(&rng, small_size * ratio,
                               8 * small_size * ratio);
    VertexSet expected = ReferenceIntersection(a, b);

    simd::SetSimdEnabled(false);
    VertexSet scalar_out;
    Intersect(a, b, &scalar_out);
    const size_t scalar_size = IntersectSize(a, b);

    simd::SetSimdEnabled(true);  // no-op without AVX2; still differential
    VertexSet simd_out;
    Intersect(a, b, &simd_out);

    EXPECT_EQ(scalar_out, expected);
    EXPECT_EQ(simd_out, expected);
    EXPECT_EQ(scalar_size, expected.size());
    EXPECT_EQ(IntersectSize(a, b), expected.size());
  }
}

TEST(SimdIntersectTest, SizeLimitIdenticalUnderBothKernels) {
  SimdStateGuard guard;
  Rng rng(1311);
  for (int trial = 0; trial < 200; ++trial) {
    VertexSet a = RandomSorted(&rng, 64 + rng.NextBounded(512), 4096);
    VertexSet b = RandomSorted(&rng, 64 + rng.NextBounded(512), 4096);
    const size_t full = ReferenceIntersection(a, b).size();
    const size_t limit = rng.NextBounded(full + 4);
    const size_t expected = std::min(full, limit);
    simd::SetSimdEnabled(false);
    EXPECT_EQ(IntersectSize(a, b, limit), expected);
    simd::SetSimdEnabled(true);
    EXPECT_EQ(IntersectSize(a, b, limit), expected);
  }
}

TEST(FusedFilterTest, ClampViewMatchesManualFiltering) {
  VertexSet s = Make({2, 4, 6, 8, 10, 12});
  VertexSetView v = ClampView(s, 5, 11);
  EXPECT_EQ(VertexSet(v.begin(), v.end()), Make({6, 8, 10}));
  // Empty when the range collapses.
  EXPECT_TRUE(ClampView(s, 7, 7).empty());
  EXPECT_TRUE(ClampView(s, 9, 3).empty());
  // Unbounded clamp is the identity (and aliases the input).
  VertexSetView all = ClampView(s, 0, kInvalidVertex);
  EXPECT_EQ(all.data, s.data());
  EXPECT_EQ(all.size, s.size());
}

TEST(FusedFilterTest, CopyExcludingDropsOnlyListedValues) {
  VertexSet out;
  const VertexId excludes[] = {4, 99, 8};
  CopyExcluding(Make({2, 4, 6, 8, 10}), excludes, 3, &out);
  EXPECT_EQ(out, Make({2, 6, 10}));
  CopyExcluding(Make({}), excludes, 3, &out);
  EXPECT_TRUE(out.empty());
  CopyExcluding(Make({1, 2}), nullptr, 0, &out);
  EXPECT_EQ(out, Make({1, 2}));
}

TEST(FusedFilterTest, IntersectExcludingIdenticalUnderBothKernels) {
  SimdStateGuard guard;
  Rng rng(555);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t small_size = 1 + rng.NextBounded(200);
    const size_t ratio = 1 + rng.NextBounded(100);
    const uint64_t universe = 4 * small_size * ratio;
    VertexSet a = RandomSorted(&rng, small_size, universe);
    VertexSet b = RandomSorted(&rng, small_size * ratio, universe);
    // Up to three ≠ values, biased so some actually hit the intersection.
    VertexSet expected = ReferenceIntersection(a, b);
    VertexSet excludes;
    const size_t n_excludes = rng.NextBounded(4);
    for (size_t i = 0; i < n_excludes; ++i) {
      if (!expected.empty() && rng.NextBounded(2) == 0) {
        excludes.push_back(expected[rng.NextBounded(expected.size())]);
      } else {
        excludes.push_back(static_cast<VertexId>(rng.NextBounded(universe)));
      }
    }
    VertexSet reference;
    for (VertexId v : expected) {
      if (std::find(excludes.begin(), excludes.end(), v) == excludes.end()) {
        reference.push_back(v);
      }
    }

    simd::SetSimdEnabled(false);
    VertexSet scalar_out;
    IntersectExcluding(a, b, excludes.data(), excludes.size(), &scalar_out);
    simd::SetSimdEnabled(true);
    VertexSet simd_out;
    IntersectExcluding(a, b, excludes.data(), excludes.size(), &simd_out);

    EXPECT_EQ(scalar_out, reference) << "trial " << trial;
    EXPECT_EQ(simd_out, reference) << "trial " << trial;
  }
}

TEST(FusedFilterTest, FusedPipelineMatchesFilterThenIntersect) {
  // End-to-end shape the executor uses: clamp one operand to [lo, hi),
  // intersect, drop ≠ values — against the seed's order of operations
  // (intersect first, then erase the filtered ranges).
  SimdStateGuard guard;
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    VertexSet a = RandomSorted(&rng, 50 + rng.NextBounded(400), 2048);
    VertexSet b = RandomSorted(&rng, 50 + rng.NextBounded(400), 2048);
    const VertexId lo = static_cast<VertexId>(rng.NextBounded(1024));
    const VertexId hi =
        static_cast<VertexId>(lo + rng.NextBounded(2048 - lo) + 1);
    const VertexId ne = static_cast<VertexId>(rng.NextBounded(2048));

    // Seed semantics: intersect, then erase < lo, >= hi, == ne.
    VertexSet seed_way;
    Intersect(a, b, &seed_way);
    seed_way.erase(seed_way.begin(),
                   std::lower_bound(seed_way.begin(), seed_way.end(), lo));
    seed_way.erase(std::lower_bound(seed_way.begin(), seed_way.end(), hi),
                   seed_way.end());
    EraseValue(&seed_way, ne);

    // Fused semantics: clamp + fold, both kernel paths.
    for (bool use_simd : {false, true}) {
      simd::SetSimdEnabled(use_simd);
      VertexSet fused;
      const VertexId excludes[] = {ne};
      IntersectExcluding(ClampView(a, lo, hi), b, excludes, 1, &fused);
      EXPECT_EQ(fused, seed_way)
          << "trial " << trial << " simd=" << use_simd;
    }
  }
}

}  // namespace
}  // namespace benu
