#include "distributed/benu_driver.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/transport.h"

namespace benu {
namespace {

TEST(BenuDriverTest, CountSubgraphsMatchesOracle) {
  Graph data = std::move(GenerateBarabasiAlbert(80, 4, /*seed=*/3)).value();
  for (const char* name : {"triangle", "square", "q5", "clique4"}) {
    Graph pattern = std::move(GetPattern(name)).value();
    auto oracle = BruteForceCountSubgraphs(data, pattern);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto count = CountSubgraphs(data, pattern);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, *oracle) << name;
  }
}

TEST(BenuDriverTest, RelabelingDoesNotChangeCounts) {
  // Relabeling realizes the ≺ order in the ids for efficiency; any id
  // assignment is a valid total order, so counts must be identical.
  Graph data = std::move(GenerateErdosRenyi(100, 600, /*seed=*/9)).value();
  Graph pattern = std::move(GetPattern("q5")).value();
  BenuOptions with;
  with.relabel_by_degree = true;
  BenuOptions without;
  without.relabel_by_degree = false;
  auto a = RunBenu(data, pattern, with);
  auto b = RunBenu(data, pattern, without);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->run.total_matches, b->run.total_matches);
}

TEST(BenuDriverTest, LabeledPatternRequiresDataLabels) {
  Graph data = MakeClique(5);
  Graph pattern = MakeClique(3);
  BenuOptions options;
  options.plan.pattern_labels = {1, 1, 1};
  // No (or wrongly sized) data labels: invalid.
  auto result = RunBenu(data, pattern, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  options.data_labels = {1, 1};
  result = RunBenu(data, pattern, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenuDriverTest, ResultCarriesPlanAndRunStats) {
  Graph data = std::move(GenerateBarabasiAlbert(60, 3, /*seed=*/2)).value();
  Graph pattern = std::move(GetPattern("triangle")).value();
  BenuOptions options;
  auto result = RunBenu(data, pattern, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->plan.plan.instructions.empty());
  EXPECT_GT(result->run.num_tasks, 0u);
  EXPECT_GT(result->run.adjacency_requests, 0u);
}

TEST(BenuDriverTest, RunsOverExternalTransport) {
  // End to end over the loopback backend: the driver must produce the
  // same count the default simulated path produces.
  Graph data = std::move(GenerateBarabasiAlbert(70, 3, /*seed=*/5)).value()
                   .RelabelByDegree();
  Graph pattern = std::move(GetPattern("q5")).value();
  BenuOptions plain;
  plain.relabel_by_degree = false;
  auto expected = RunBenu(data, pattern, plain);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  BenuOptions over_loopback;
  over_loopback.relabel_by_degree = false;
  over_loopback.cluster.transport = MakeLoopbackTransport(data, 4);
  auto result = RunBenu(data, pattern, over_loopback);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.total_matches, expected->run.total_matches);
}

TEST(GenerateFromSpecTest, ParsesEverySpecKind) {
  auto er = GenerateFromSpec("er:100,300,7");
  ASSERT_TRUE(er.ok()) << er.status().ToString();
  EXPECT_EQ(er->NumVertices(), 100u);
  EXPECT_EQ(er->NumEdges(), 300u);

  auto ba = GenerateFromSpec("ba:200,5,21");
  ASSERT_TRUE(ba.ok()) << ba.status().ToString();
  EXPECT_EQ(ba->NumVertices(), 200u);

  auto plc = GenerateFromSpec("plc:150,4,50,3");
  ASSERT_TRUE(plc.ok()) << plc.status().ToString();
  EXPECT_EQ(plc->NumVertices(), 150u);

  auto standin = GenerateFromSpec("as-sim");
  ASSERT_TRUE(standin.ok()) << standin.status().ToString();

  // Determinism: the same spec builds the same graph — the property the
  // multi-process runs rely on (driver and servers parse independently).
  auto again = GenerateFromSpec("ba:200,5,21");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ba->NumEdges(), again->NumEdges());
  for (VertexId v = 0; v < ba->NumVertices(); ++v) {
    VertexSetView a = ba->Adjacency(v);
    VertexSetView b = again->Adjacency(v);
    ASSERT_EQ(a.size, b.size);
    for (size_t i = 0; i < a.size; ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(GenerateFromSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(GenerateFromSpec("er:100").ok());
  EXPECT_FALSE(GenerateFromSpec("er:100,abc,7").ok());
  EXPECT_FALSE(GenerateFromSpec("zz:1,2,3").ok());
  EXPECT_FALSE(GenerateFromSpec("no-such-dataset").ok());
}

}  // namespace
}  // namespace benu
