#include "plan/cost_model.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

TEST(EstimateMatchesTest, SingleVertexEstimatesN) {
  auto one = Graph::FromEdges(1, {});
  ASSERT_TRUE(one.ok());
  DataGraphStats stats{1000, 5000};
  EXPECT_DOUBLE_EQ(EstimateMatches(*one, stats), 1000.0);
}

TEST(EstimateMatchesTest, EdgeEstimatesTwiceEdgeCount) {
  // Injective pairs N(N-1) times edge probability 2M/(N(N-1)) = 2M.
  Graph edge = MakeClique(2);
  DataGraphStats stats{1000, 5000};
  EXPECT_NEAR(EstimateMatches(edge, stats), 10000.0, 1e-6);
}

TEST(EstimateMatchesTest, DenserPatternsAreRarer) {
  DataGraphStats stats{10000, 50000};
  double triangle = EstimateMatches(MakeClique(3), stats);
  double path3 = EstimateMatches(MakePath(3), stats);
  EXPECT_LT(triangle, path3);
}

TEST(EstimateMatchesTest, DisconnectedPatternMultipliesComponents) {
  auto two_edges = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(two_edges.ok());
  DataGraphStats stats{1000, 5000};
  Graph edge = MakeClique(2);
  double single = EstimateMatches(edge, stats);
  EXPECT_NEAR(EstimateMatches(*two_edges, stats), single * single, 1e-3);
}

TEST(EstimateMatchesTest, PatternLargerThanGraphIsZero) {
  DataGraphStats stats{3, 3};
  EXPECT_DOUBLE_EQ(EstimateMatches(MakeClique(5), stats), 0.0);
}

TEST(EstimatePlanCostTest, DbqBeforeFirstEnuChargedNTimes) {
  // Edge pattern K2: plan is INI, DBQ(A1), C2, ENU, RES. The DBQ runs once
  // per local search task = N times.
  Graph edge = MakeClique(2);
  auto plan = GenerateRawPlan(edge, Identity(2), {{0, 1}});
  ASSERT_TRUE(plan.ok());
  DataGraphStats stats{1000, 5000};
  PlanCost cost = EstimatePlanCost(*plan, stats);
  EXPECT_DOUBLE_EQ(cost.communication, 1000.0);
}

TEST(EstimatePlanCostTest, ReorderingReducesComputationCost) {
  // Moving INT instructions out of inner loops lowers the estimated
  // computation cost (that is the point of Optimization 2).
  Graph q7 = std::move(GetPattern("q7")).value();
  auto raw = GenerateRawPlan(q7, Identity(6), {});
  ASSERT_TRUE(raw.ok());
  ExecutionPlan optimized = *raw;
  OptimizePlan(&optimized);
  DataGraphStats stats{10000, 200000};
  PlanCost raw_cost = EstimatePlanCost(*raw, stats);
  PlanCost opt_cost = EstimatePlanCost(optimized, stats);
  EXPECT_LE(opt_cost.computation, raw_cost.computation);
  EXPECT_DOUBLE_EQ(opt_cost.communication, raw_cost.communication);
}

TEST(CheaperThanTest, CommunicationDominates) {
  EXPECT_TRUE(CheaperThan({10, 1e9}, {11, 0}));
  EXPECT_FALSE(CheaperThan({11, 0}, {10, 1e9}));
  EXPECT_TRUE(CheaperThan({10, 5}, {10, 6}));
  EXPECT_FALSE(CheaperThan({10, 6}, {10, 6}));
}

}  // namespace
}  // namespace benu
