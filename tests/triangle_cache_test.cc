#include "storage/triangle_cache.h"

#include <gtest/gtest.h>

namespace benu {
namespace {

std::shared_ptr<const VertexSet> Set(std::initializer_list<VertexId> v) {
  return std::make_shared<const VertexSet>(v);
}

TEST(TriangleCacheTest, MissThenHit) {
  TriangleCache cache;
  cache.BeginTask(7);
  EXPECT_EQ(cache.Lookup(3), nullptr);
  cache.Insert(3, Set({1, 2}));
  auto found = cache.Lookup(3);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, (VertexSet{1, 2}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TriangleCacheTest, NewStartVertexFlushes) {
  TriangleCache cache;
  cache.BeginTask(7);
  cache.Insert(3, Set({1}));
  cache.BeginTask(8);
  EXPECT_EQ(cache.Lookup(3), nullptr);
}

TEST(TriangleCacheTest, SameStartKeepsEntries) {
  // Subtasks produced by task splitting share the start vertex and must
  // reuse the warm cache.
  TriangleCache cache;
  cache.BeginTask(7);
  cache.Insert(3, Set({1}));
  cache.BeginTask(7);
  EXPECT_NE(cache.Lookup(3), nullptr);
}

TEST(TriangleCacheTest, CapacityBoundsEntries) {
  TriangleCache cache(2);
  cache.BeginTask(1);
  cache.Insert(10, Set({1}));
  cache.Insert(11, Set({2}));
  cache.Insert(12, Set({3}));  // beyond capacity: dropped
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(12), nullptr);
}

TEST(TriangleCacheTest, ZeroCapacityDisables) {
  TriangleCache cache(0);
  cache.BeginTask(1);
  cache.Insert(10, Set({1}));
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace benu
