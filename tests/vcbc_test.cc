#include "plan/vcbc.h"

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

ExecutionPlan OptimizedPlanFor(const std::string& name) {
  Graph p = std::move(GetPattern(name)).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
  EXPECT_TRUE(plan.ok());
  OptimizePlan(&plan.value());
  return std::move(plan).value();
}

size_t CountType(const ExecutionPlan& plan, InstrType type) {
  size_t count = 0;
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == type) ++count;
  }
  return count;
}

TEST(VcbcTest, CorePrefixIsAVertexCover) {
  for (const std::string name : {"q4", "q5", "q7", "square", "clique5"}) {
    ExecutionPlan plan = OptimizedPlanFor(name);
    ASSERT_TRUE(ApplyVcbcCompression(&plan).ok()) << name;
    EXPECT_TRUE(plan.compressed);
    EXPECT_TRUE(IsVertexCover(plan.pattern, plan.core_vertices)) << name;
    // Minimality within the matching order: dropping the last core vertex
    // breaks coverage (unless the whole order is core).
    if (plan.core_vertices.size() < plan.NumPatternVertices()) {
      std::vector<VertexId> shorter(plan.core_vertices.begin(),
                                    plan.core_vertices.end() - 1);
      EXPECT_FALSE(IsVertexCover(plan.pattern, shorter)) << name;
    }
  }
}

TEST(VcbcTest, NonCoreEnuInstructionsRemoved) {
  ExecutionPlan plan = OptimizedPlanFor("square");
  ASSERT_TRUE(ApplyVcbcCompression(&plan).ok());
  // Square in identity order: core {0, 1, 2}? The matching-order prefix
  // {0,1} is not a cover; {0,1,2} is. Non-core = {3}: one ENU gone.
  EXPECT_EQ(CountType(plan, InstrType::kEnumerate),
            plan.core_vertices.size() - 1);
  std::string error;
  EXPECT_TRUE(ValidatePlan(plan, &error)) << error << plan.ToString();
}

TEST(VcbcTest, ResReportsSetsForNonCore) {
  ExecutionPlan plan = OptimizedPlanFor("q4");
  ASSERT_TRUE(ApplyVcbcCompression(&plan).ok());
  const Instruction& res = plan.instructions.back();
  ASSERT_EQ(res.type, InstrType::kReport);
  std::vector<char> is_core(plan.NumPatternVertices(), 0);
  for (VertexId u : plan.core_vertices) is_core[u] = 1;
  for (size_t u = 0; u < plan.NumPatternVertices(); ++u) {
    if (is_core[u]) {
      EXPECT_EQ(res.operands[u].kind, VarKind::kF) << plan.ToString();
    } else {
      EXPECT_NE(res.operands[u].kind, VarKind::kF) << plan.ToString();
    }
  }
}

TEST(VcbcTest, NoFiltersReferenceNonCoreVertices) {
  for (const std::string name : {"q4", "q5", "q8"}) {
    ExecutionPlan plan = OptimizedPlanFor(name);
    ASSERT_TRUE(ApplyVcbcCompression(&plan).ok()) << name;
    std::vector<char> is_core(plan.NumPatternVertices(), 0);
    for (VertexId u : plan.core_vertices) is_core[u] = 1;
    for (const Instruction& ins : plan.instructions) {
      for (const FilterCondition& fc : ins.filters) {
        EXPECT_TRUE(is_core[fc.f_index]) << name << ": " << ins.ToString();
      }
    }
  }
}

TEST(VcbcTest, DoubleCompressionRejected) {
  ExecutionPlan plan = OptimizedPlanFor("square");
  ASSERT_TRUE(ApplyVcbcCompression(&plan).ok());
  EXPECT_EQ(ApplyVcbcCompression(&plan).code(),
            StatusCode::kFailedPrecondition);
}

TEST(VcbcTest, FullCoverPatternIsMarkedButUnchanged) {
  // For K2 the minimum matching-order cover prefix is just {0}; check a
  // pattern whose cover is the whole prefix anyway: the path 0-1 has
  // cover {0}, so vertex 1 is compressed away.
  Graph path = MakePath(2);
  auto plan = GenerateRawPlan(path, Identity(2), {});
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());
  ASSERT_TRUE(ApplyVcbcCompression(&plan.value()).ok());
  EXPECT_EQ(plan->core_vertices.size(), 1u);
  EXPECT_EQ(CountType(*plan, InstrType::kEnumerate), 0u);
}

}  // namespace
}  // namespace benu
