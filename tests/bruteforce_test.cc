#include "baselines/bruteforce.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "graph/patterns.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

TEST(BruteForceTest, TrianglesInCliques) {
  // K_n contains C(n,3) triangles.
  Graph triangle = MakeClique(3);
  EXPECT_EQ(*BruteForceCountSubgraphs(MakeClique(4), triangle), 4u);
  EXPECT_EQ(*BruteForceCountSubgraphs(MakeClique(5), triangle), 10u);
  EXPECT_EQ(*BruteForceCountSubgraphs(MakeClique(6), triangle), 20u);
}

TEST(BruteForceTest, WithoutConstraintsCountsAllMatches) {
  // Matches = subgraphs × |Aut(P)|.
  Graph triangle = MakeClique(3);
  auto matches = BruteForceCount(MakeClique(5), triangle, {});
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 10u * 6u);
}

TEST(BruteForceTest, CyclesInCycles) {
  EXPECT_EQ(*BruteForceCountSubgraphs(MakeCycle(5), MakeCycle(5)), 1u);
  EXPECT_EQ(*BruteForceCountSubgraphs(MakeCycle(6), MakeCycle(5)), 0u);
}

TEST(BruteForceTest, SquaresInBipartiteClique) {
  // K_{2,3}: squares = C(2,2) × C(3,2) = 3.
  auto k23 = Graph::FromEdges(
      5, {{0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}});
  ASSERT_TRUE(k23.ok());
  EXPECT_EQ(*BruteForceCountSubgraphs(*k23, MakeCycle(4)), 3u);
}

TEST(BruteForceTest, EnumerateReturnsDistinctSortedMatches) {
  auto data = GenerateErdosRenyi(25, 80, 4);
  ASSERT_TRUE(data.ok());
  Graph p = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto matches = BruteForceEnumerate(*data, p, cs);
  ASSERT_TRUE(matches.ok());
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_LT((*matches)[i - 1], (*matches)[i]);
  }
  for (const auto& f : *matches) {
    EXPECT_TRUE(data->HasEdge(f[0], f[1]));
    EXPECT_TRUE(data->HasEdge(f[1], f[2]));
    EXPECT_TRUE(data->HasEdge(f[0], f[2]));
  }
}

TEST(BruteForceTest, SubgraphCountIsLabelingInvariant) {
  // Counting subgraphs must not depend on the total order realization.
  auto data = GenerateBarabasiAlbert(100, 3, 6);
  ASSERT_TRUE(data.ok());
  Graph relabeled = data->RelabelByDegree();
  for (const std::string name : {"triangle", "square", "q3"}) {
    Graph p = std::move(GetPattern(name)).value();
    EXPECT_EQ(*BruteForceCountSubgraphs(*data, p),
              *BruteForceCountSubgraphs(relabeled, p))
        << name;
  }
}

TEST(BruteForceTest, EmptyPatternRejected) {
  Graph empty;
  EXPECT_FALSE(BruteForceCount(MakeClique(3), empty, {}).ok());
}

TEST(BruteForceTest, PatternLargerThanDataYieldsZero) {
  EXPECT_EQ(*BruteForceCountSubgraphs(MakeClique(3), MakeClique(4)), 0u);
}

}  // namespace
}  // namespace benu
