#include "plan/optimizer.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

size_t CountType(const ExecutionPlan& plan, InstrType type) {
  size_t count = 0;
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == type) ++count;
  }
  return count;
}

ExecutionPlan RawPlanFor(const std::string& name) {
  Graph p = std::move(GetPattern(name)).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
  EXPECT_TRUE(plan.ok());
  return std::move(plan).value();
}

TEST(CseTest, CliqueSharesPrefixIntersections) {
  // K4 in identity order: candidates for u3 are A1∩A2, for u4 are
  // A1∩A2∩A3 — the common subexpression {A1,A2} must be hoisted once.
  ExecutionPlan plan = RawPlanFor("clique4");
  EliminateCommonSubexpressions(&plan);
  std::string error;
  ASSERT_TRUE(ValidatePlan(plan, &error)) << error;
  size_t with_a1_a2 = 0;
  for (const Instruction& ins : plan.instructions) {
    if (ins.type != InstrType::kIntersect) continue;
    bool has_a1 = false;
    bool has_a2 = false;
    for (const VarRef& op : ins.operands) {
      if (op == VarRef{VarKind::kA, 0}) has_a1 = true;
      if (op == VarRef{VarKind::kA, 1}) has_a2 = true;
    }
    if (has_a1 && has_a2) ++with_a1_a2;
  }
  EXPECT_EQ(with_a1_a2, 1u) << plan.ToString();
}

TEST(CseTest, NoOpWhenNoCommonSubexpressions) {
  ExecutionPlan plan = RawPlanFor("q5");  // C5: every INT has ≤1 adjacency
  const size_t before = plan.instructions.size();
  EliminateCommonSubexpressions(&plan);
  EXPECT_EQ(plan.instructions.size(), before);
}

TEST(ReorderTest, IntersectionsBeforeDependentsPreserved) {
  ExecutionPlan plan = RawPlanFor("q4");
  EliminateCommonSubexpressions(&plan);
  ReorderInstructions(&plan);
  std::string error;
  EXPECT_TRUE(ValidatePlan(plan, &error)) << error << plan.ToString();
}

TEST(ReorderTest, FlattensToAtMostTwoOperands) {
  ExecutionPlan plan = RawPlanFor("clique5");
  ReorderInstructions(&plan);
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == InstrType::kIntersect) {
      EXPECT_LE(ins.operands.size(), 2u) << ins.ToString();
    }
  }
  std::string error;
  EXPECT_TRUE(ValidatePlan(plan, &error)) << error;
}

TEST(ReorderTest, EnuRelativeOrderFollowsMatchingOrder) {
  ExecutionPlan plan = RawPlanFor("q7");
  OptimizePlan(&plan);
  std::vector<int> enu_targets;
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == InstrType::kEnumerate) {
      enu_targets.push_back(ins.target.index);
    }
  }
  // ENU targets must be matching_order[1..] in order.
  ASSERT_EQ(enu_targets.size(), plan.matching_order.size() - 1);
  for (size_t i = 0; i < enu_targets.size(); ++i) {
    EXPECT_EQ(enu_targets[i],
              static_cast<int>(plan.matching_order[i + 1]));
  }
}

TEST(ReorderTest, InitIsFirstReportIsLast) {
  ExecutionPlan plan = RawPlanFor("q2");
  OptimizePlan(&plan);
  ASSERT_FALSE(plan.instructions.empty());
  EXPECT_EQ(plan.instructions.front().type, InstrType::kInit);
  EXPECT_EQ(plan.instructions.back().type, InstrType::kReport);
}

TEST(TriangleCachingTest, CliquePlanGetsTrcInstructions) {
  // In K4 identity order, Intersect(A1, A2)-style instructions around the
  // start vertex qualify for caching.
  ExecutionPlan plan = RawPlanFor("clique4");
  EliminateCommonSubexpressions(&plan);
  ReorderInstructions(&plan);
  ApplyTriangleCaching(&plan);
  EXPECT_GE(CountType(plan, InstrType::kTriangleCache), 1u)
      << plan.ToString();
  std::string error;
  EXPECT_TRUE(ValidatePlan(plan, &error)) << error;
}

TEST(TriangleCachingTest, TrcFirstOperandIsStartVertex) {
  ExecutionPlan plan = RawPlanFor("q7");
  OptimizePlan(&plan);
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == InstrType::kTriangleCache) {
      EXPECT_EQ(ins.operands[0],
                (VarRef{VarKind::kA, static_cast<int>(plan.matching_order[0])}));
    }
  }
}

TEST(TriangleCachingTest, PathPlanHasNoTrc) {
  // No triangles around the start vertex in a path pattern.
  Graph path = MakePath(4);
  auto plan = GenerateRawPlan(path, Identity(4), {});
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());
  EXPECT_EQ(CountType(*plan, InstrType::kTriangleCache), 0u);
}

TEST(CseTest, IdempotentOnSecondApplication) {
  ExecutionPlan plan = RawPlanFor("clique5");
  EliminateCommonSubexpressions(&plan);
  ExecutionPlan again = plan;
  EliminateCommonSubexpressions(&again);
  EXPECT_EQ(plan.instructions.size(), again.instructions.size());
}

TEST(ReorderTest, IdempotentOnSecondApplication) {
  ExecutionPlan plan = RawPlanFor("q7");
  OptimizePlan(&plan);
  ExecutionPlan again = plan;
  ReorderInstructions(&again);
  ASSERT_EQ(plan.instructions.size(), again.instructions.size());
  for (size_t i = 0; i < plan.instructions.size(); ++i) {
    EXPECT_EQ(plan.instructions[i].ToString(),
              again.instructions[i].ToString());
  }
}

TEST(TriangleCachingTest, FilteredIntersectionsAreNotConverted) {
  // An INT with filters must not become TRC: the cache key ignores the
  // filter context, so caching a filtered set would corrupt reuse.
  ExecutionPlan plan = RawPlanFor("triangle");
  EliminateCommonSubexpressions(&plan);
  ReorderInstructions(&plan);
  ApplyTriangleCaching(&plan);
  for (const Instruction& ins : plan.instructions) {
    if (ins.type == InstrType::kTriangleCache) {
      EXPECT_TRUE(ins.filters.empty());
    }
  }
}

TEST(OptimizePlanTest, AllCatalogPlansRemainValid) {
  for (const std::string& name : AllPatternNames()) {
    ExecutionPlan plan = RawPlanFor(name);
    OptimizePlan(&plan);
    std::string error;
    EXPECT_TRUE(ValidatePlan(plan, &error)) << name << ": " << error;
  }
}

}  // namespace
}  // namespace benu
