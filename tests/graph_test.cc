#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/isomorphism.h"
#include "graph/patterns.h"

namespace benu {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, FromEdgesBuildsSortedAdjacency) {
  auto g = Graph::FromEdges(4, {{0, 2}, {0, 1}, {2, 3}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 4u);
  EXPECT_EQ(g->NumEdges(), 4u);
  VertexSetView adj = g->Adjacency(2);
  ASSERT_EQ(adj.size, 3u);
  EXPECT_EQ(adj[0], 0u);
  EXPECT_EQ(adj[1], 1u);
  EXPECT_EQ(adj[2], 3u);
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  auto g = Graph::FromEdges(3, {{1, 1}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, OutOfRangeEndpointRejected) {
  auto g = Graph::FromEdges(2, {{0, 5}});
  EXPECT_FALSE(g.ok());
}

TEST(GraphTest, HasEdgeBothDirections) {
  auto g = Graph::FromEdges(3, {{0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 0));
  EXPECT_FALSE(g->HasEdge(0, 2));
}

TEST(GraphTest, EdgesReportsEachOnce) {
  Graph g = MakeClique(4);
  auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 6u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, DegreeAndMaxDegree) {
  Graph star = MakeStar(5);
  EXPECT_EQ(star.Degree(0), 5u);
  EXPECT_EQ(star.Degree(3), 1u);
  EXPECT_EQ(star.MaxDegree(), 5u);
}

TEST(GraphTest, AdjacencyBytesCountsBothDirections) {
  Graph g = MakeClique(3);
  EXPECT_EQ(g.AdjacencyBytes(), 6 * sizeof(VertexId));
}

TEST(GraphTest, RelabelByDegreeRealizesTotalOrder) {
  // Star: the hub must get the largest id.
  Graph star = MakeStar(4);
  std::vector<VertexId> old_to_new;
  Graph relabeled = star.RelabelByDegree(&old_to_new);
  EXPECT_EQ(relabeled.NumEdges(), star.NumEdges());
  EXPECT_EQ(old_to_new[0], 4u);  // hub had degree 4
  // Ids are now ascending by degree.
  for (VertexId v = 0; v + 1 < relabeled.NumVertices(); ++v) {
    EXPECT_LE(relabeled.Degree(v), relabeled.Degree(v + 1));
  }
}

TEST(GraphTest, RelabelByDegreePreservesStructure) {
  auto g = Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {3, 4}, {4, 5}});
  ASSERT_TRUE(g.ok());
  std::vector<VertexId> old_to_new;
  Graph relabeled = g->RelabelByDegree(&old_to_new);
  // The mapping is a bijection preserving edges exactly.
  for (const auto& [u, v] : g->Edges()) {
    EXPECT_TRUE(relabeled.HasEdge(old_to_new[u], old_to_new[v]));
  }
  EXPECT_EQ(relabeled.NumEdges(), g->NumEdges());
  EXPECT_TRUE(AreIsomorphic(*g, relabeled));
}

TEST(GraphTest, RelabelTiesBrokenById) {
  // All-equal degrees: relabeling must be the identity.
  Graph cycle = MakeCycle(6);
  std::vector<VertexId> old_to_new;
  Graph relabeled = cycle.RelabelByDegree(&old_to_new);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(old_to_new[v], v);
  EXPECT_TRUE(cycle == relabeled);
}

TEST(GraphTest, InducedSubgraphKeepsLocalNumbering) {
  Graph clique = MakeClique(5);
  auto sub = clique.InducedSubgraph({4, 1, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumVertices(), 3u);
  EXPECT_EQ(sub->NumEdges(), 3u);  // triangle
}

TEST(GraphTest, InducedSubgraphRejectsDuplicates) {
  Graph clique = MakeClique(3);
  EXPECT_FALSE(clique.InducedSubgraph({0, 0}).ok());
}

TEST(GraphTest, InducedSubgraphOfPathDropsEdges) {
  Graph path = MakePath(4);  // 0-1-2-3
  auto sub = path.InducedSubgraph({0, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumEdges(), 0u);
}

TEST(GraphTest, ConnectivityChecks) {
  auto disconnected = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(disconnected.ok());
  EXPECT_FALSE(disconnected->IsConnected());
  auto components = disconnected->ConnectedComponents();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<VertexId>{2, 3}));
  EXPECT_TRUE(MakeCycle(5).IsConnected());
}

TEST(GraphTest, IsolatedVerticesFormComponents) {
  auto g = Graph::FromEdges(3, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ConnectedComponents().size(), 3u);
}

}  // namespace
}  // namespace benu
