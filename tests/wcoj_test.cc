#include "baselines/wcoj.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

TEST(WcojTest, MatchesBruteForceAcrossPatterns) {
  auto data = GenerateErdosRenyi(60, 240, 8);
  ASSERT_TRUE(data.ok());
  for (const std::string name :
       {"triangle", "square", "diamond", "clique4", "q1", "q4", "q5"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto expected = BruteForceCount(*data, p, cs);
    ASSERT_TRUE(expected.ok());
    auto result = RunWcoj(*data, p, cs, WcojConfig{});
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result->matches, *expected) << name;
  }
}

TEST(WcojTest, BatchSizeDoesNotChangeCounts) {
  auto data = GenerateBarabasiAlbert(120, 4, 3);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("q3")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  Count reference = 0;
  for (size_t batch : {size_t{1}, size_t{17}, size_t{100000}}) {
    WcojConfig config;
    config.batch_size = batch;
    auto result = RunWcoj(*data, p, cs, config);
    ASSERT_TRUE(result.ok());
    if (batch == 1) {
      reference = result->matches;
    } else {
      EXPECT_EQ(result->matches, reference) << batch;
    }
  }
}

TEST(WcojTest, SmallBatchesBoundMemory) {
  auto data = GenerateBarabasiAlbert(200, 5, 10);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("triangle")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  WcojConfig small;
  small.batch_size = 8;
  WcojConfig large;
  large.batch_size = 1000000;
  auto rs = RunWcoj(*data, p, cs, small);
  auto rl = RunWcoj(*data, p, cs, large);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_LE(rs->peak_resident_tuples, rl->peak_resident_tuples);
}

TEST(WcojTest, MemoryBudgetTriggersOom) {
  auto data = GenerateBarabasiAlbert(500, 8, 11);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("q5")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  WcojConfig config;
  config.batch_size = 1000000;  // whole graph in one batch
  config.max_resident_tuples = 100;
  auto result = RunWcoj(*data, p, cs, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(WcojTest, DistributedModeAccountsShuffles) {
  auto data = GenerateBarabasiAlbert(150, 4, 12);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("square")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  WcojConfig local;
  WcojConfig dist;
  dist.distributed = true;
  auto rl = RunWcoj(*data, p, cs, local);
  auto rd = RunWcoj(*data, p, cs, dist);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rl->matches, rd->matches);
  EXPECT_EQ(rl->shuffled_tuples, 0u);
  EXPECT_GT(rd->shuffled_tuples, 0u);
}

TEST(WcojTest, RejectsDegeneratePatterns) {
  Graph empty;
  auto disconnected = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(disconnected.ok());
  EXPECT_FALSE(RunWcoj(MakeClique(3), empty, {}, WcojConfig{}).ok());
  EXPECT_FALSE(RunWcoj(MakeClique(3), *disconnected, {}, WcojConfig{}).ok());
}

}  // namespace
}  // namespace benu
