#include "distributed/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "baselines/bruteforce.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/plan_search.h"

namespace benu {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  config.db_cache_bytes = 1 << 20;
  return config;
}

TEST(ClusterTest, CountsMatchBruteForce) {
  auto raw = GenerateBarabasiAlbert(150, 4, 2);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  for (const std::string name : {"triangle", "q1", "q4"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
    ASSERT_TRUE(plan.ok()) << name;
    ClusterSimulator cluster(data, SmallCluster());
    auto result = cluster.Run(plan->plan);
    ASSERT_TRUE(result.ok()) << name;
    auto expected = BruteForceCountSubgraphs(data, p);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(result->total_matches, *expected) << name;
  }
}

TEST(ClusterTest, WorkerCountDoesNotChangeResults) {
  auto raw = GenerateBarabasiAlbert(120, 4, 9);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q3")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  Count reference = 0;
  for (int workers : {1, 2, 4, 8}) {
    ClusterConfig config = SmallCluster();
    config.num_workers = workers;
    ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan->plan);
    ASSERT_TRUE(result.ok());
    if (workers == 1) {
      reference = result->total_matches;
    } else {
      EXPECT_EQ(result->total_matches, reference) << workers;
    }
  }
}

TEST(ClusterTest, TaskSplittingPreservesCounts) {
  auto raw = GenerateBarabasiAlbert(200, 6, 13);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q5")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());

  ClusterConfig no_split = SmallCluster();
  ClusterConfig split = SmallCluster();
  split.task_split_threshold = 8;
  ClusterSimulator a(data, no_split);
  ClusterSimulator b(data, split);
  auto ra = a.Run(plan->plan);
  auto rb = b.Run(plan->plan);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->total_matches, rb->total_matches);
  EXPECT_GT(rb->num_tasks, ra->num_tasks);
}

TEST(ClusterTest, CacheReducesDbQueries) {
  auto raw = GenerateBarabasiAlbert(300, 5, 21);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());

  ClusterConfig cold = SmallCluster();
  cold.db_cache_bytes = 0;
  ClusterConfig warm = SmallCluster();
  warm.db_cache_bytes = 64 << 20;
  ClusterSimulator a(data, cold);
  ClusterSimulator b(data, warm);
  auto ra = a.Run(plan->plan);
  auto rb = b.Run(plan->plan);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->total_matches, rb->total_matches);
  EXPECT_LT(rb->db_queries, ra->db_queries);
  EXPECT_GT(rb->CacheHitRate(), 0.5);
  EXPECT_EQ(ra->cache_hits, 0u);
}

TEST(ClusterTest, PrefetchPipelinePreservesCountsOnDbqHeavyPlans) {
  // DBQ-heavy regression: q9 and the 5-clique with a capacity-0 cache —
  // every adjacency request is a store fetch, so the prefetch pipeline is
  // maximally exercised (nothing it inserts is ever retained). Match
  // counts must be bit-identical across the synchronous baseline, the
  // forced-sync pipeline and the async pipeline.
  auto raw = GenerateBarabasiAlbert(120, 5, 41);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  for (const std::string name : {"q9", "clique5"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
    ASSERT_TRUE(plan.ok()) << name;

    ClusterConfig sync = SmallCluster();
    sync.db_cache_bytes = 0;
    ClusterConfig forced = sync;
    forced.prefetch_budget = 32;
    forced.force_sync_prefetch = true;
    ClusterConfig async = sync;
    async.prefetch_budget = 32;

    Count reference = 0;
    bool first = true;
    for (const ClusterConfig* config : {&sync, &forced, &async}) {
      ClusterSimulator cluster(data, *config);
      auto result = cluster.Run(plan->plan);
      ASSERT_TRUE(result.ok()) << name;
      if (first) {
        reference = result->total_matches;
        first = false;
        EXPECT_EQ(result->prefetches_issued, 0u) << name;
        EXPECT_EQ(result->hidden_comm_seconds, 0.0) << name;
      } else {
        EXPECT_EQ(result->total_matches, reference) << name;
        EXPECT_GT(result->prefetches_issued, 0u) << name;
      }
      if (config == &forced) {
        EXPECT_EQ(result->hidden_comm_seconds, 0.0) << name;
      }
    }
  }
}

TEST(ClusterTest, AsyncPrefetchHidesCommunicationAtHighLatency) {
  // With retention (a warm cache) and real store latency, the async
  // pipeline must report hidden communication and must not be slower
  // than the synchronous baseline in virtual time.
  auto raw = GenerateBarabasiAlbert(300, 5, 21);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q5")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());

  ClusterConfig sync = SmallCluster();
  sync.db_cache_bytes = 4 << 10;  // small: constant miss pressure
  sync.db_query_latency_us = 1000.0;
  ClusterConfig async = sync;
  async.prefetch_budget = 64;
  async.prefetch_batch_size = 16;

  ClusterSimulator a(data, sync);
  ClusterSimulator b(data, async);
  auto ra = a.Run(plan->plan);
  auto rb = b.Run(plan->plan);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->total_matches, rb->total_matches);
  EXPECT_EQ(ra->hidden_comm_seconds, 0.0);
  EXPECT_GT(rb->hidden_comm_seconds, 0.0);
  EXPECT_GT(rb->prefetch_round_trips, 0u);
  // Batched round trips are strictly fewer than the keys they carried.
  EXPECT_LT(rb->prefetch_round_trips, rb->prefetches_issued);
}

TEST(ClusterTest, HybridExpansionPreservesCountsInEveryRegime) {
  // The hybrid ENU path drains governor-leased frontier batches through
  // the same DescendRange loop plain DFS uses, so the candidate visit
  // order — and therefore the match count — must be bit-identical in
  // every governed regime: generous budget (wide batches), starved
  // budget (constant lease denials, spill-to-DFS), no ceiling at all,
  // and the unbounded full-BFS control. q5 and clique4 cover both a
  // cycle (DBQ-heavy) and a dense (INT-heavy) plan shape.
  auto raw = GenerateBarabasiAlbert(200, 5, 17);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  for (const std::string name : {"q5", "clique4"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
    ASSERT_TRUE(plan.ok()) << name;

    ClusterConfig dfs = SmallCluster();
    dfs.db_cache_bytes = 64 << 10;
    dfs.prefetch_budget = 16;

    ClusterConfig generous = dfs;
    generous.expansion = ExpansionMode::kHybrid;
    generous.memory_budget_bytes = 64u << 20;
    // Starved: the budget sits below the caches' working set, so every
    // lease is denied and each batch degrades to the static-DFS path.
    ClusterConfig starved = generous;
    starved.memory_budget_bytes = 1024;
    ClusterConfig unbounded = generous;
    unbounded.memory_budget_bytes = 0;
    ClusterConfig full_bfs = dfs;
    full_bfs.expansion = ExpansionMode::kFullBfs;

    Count reference = 0;
    bool first = true;
    for (const ClusterConfig* config :
         {&dfs, &generous, &starved, &unbounded, &full_bfs}) {
      ClusterSimulator cluster(data, *config);
      auto result = cluster.Run(plan->plan);
      ASSERT_TRUE(result.ok()) << name;
      if (first) {
        reference = result->total_matches;
        first = false;
        EXPECT_GT(reference, 0u) << name;
      } else {
        EXPECT_EQ(result->total_matches, reference) << name;
      }
    }
  }
}

TEST(ClusterTest, OverlapFractionIsConsistentWithItsParts) {
  // hidden <= prefetch pipeline total, so the overlap fraction is a
  // proper fraction; with the pipeline off it is exactly 0.
  auto raw = GenerateBarabasiAlbert(150, 5, 23);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q5")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());

  ClusterConfig async = SmallCluster();
  async.db_cache_bytes = 4 << 10;
  async.db_query_latency_us = 500.0;
  async.prefetch_budget = 32;
  ClusterSimulator cluster(data, async);
  auto result = cluster.Run(plan->plan);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->prefetch_comm_seconds, 0.0);
  EXPECT_LE(result->hidden_comm_seconds,
            result->prefetch_comm_seconds + 1e-9);
  EXPECT_GT(result->OverlapFraction(), 0.0);
  EXPECT_LE(result->OverlapFraction(), 1.0);
  double worker_prefetch_comm = 0;
  for (const WorkerSummary& w : result->workers) {
    EXPECT_LE(w.hidden_comm_us, w.prefetch_comm_us + 1e-6);
    worker_prefetch_comm += w.prefetch_comm_us * 1e-6;
  }
  EXPECT_NEAR(worker_prefetch_comm, result->prefetch_comm_seconds, 1e-9);

  ClusterConfig sync = async;
  sync.prefetch_budget = 0;
  ClusterSimulator sync_cluster(data, sync);
  auto sync_result = sync_cluster.Run(plan->plan);
  ASSERT_TRUE(sync_result.ok());
  EXPECT_EQ(sync_result->OverlapFraction(), 0.0);
  EXPECT_EQ(sync_result->total_matches, result->total_matches);
}

TEST(ClusterTest, StatsAreInternallyConsistent) {
  auto raw = GenerateBarabasiAlbert(100, 4, 33);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("triangle")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  ClusterSimulator cluster(data, SmallCluster());
  auto result = cluster.Run(plan->plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->adjacency_requests, result->cache_hits +
                                            result->db_queries +
                                            result->coalesced_fetches);
  EXPECT_EQ(result->task_virtual_us.size(), result->num_tasks);
  size_t tasks_across_workers = 0;
  Count coalesced_in_caches = 0;
  for (const WorkerSummary& w : result->workers) {
    tasks_across_workers += w.tasks;
    coalesced_in_caches += w.cache.coalesced;
    EXPECT_LE(w.makespan_virtual_us, w.busy_virtual_us + 1e-6);
    EXPECT_GT(w.real_seconds, 0.0);
    EXPECT_LE(w.real_seconds, result->real_seconds + 1e-6);
  }
  EXPECT_EQ(tasks_across_workers, result->num_tasks);
  // The executors' view of coalescing agrees with the caches'.
  EXPECT_EQ(coalesced_in_caches, result->coalesced_fetches);
  EXPECT_GT(result->virtual_seconds, 0.0);
  EXPECT_GE(result->runtime_threads, 1);
  EXPECT_GE(result->execution_threads, 1);
}

TEST(ClusterTest, RealExecutionThreadsPreserveCounts) {
  // Multithreaded in-worker execution (threads share the worker's DB
  // cache) must produce identical totals to serial execution.
  auto raw = GenerateBarabasiAlbert(200, 5, 61);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data),
                               {.optimize = true, .apply_vcbc = true});
  ASSERT_TRUE(plan.ok());
  Count serial_matches = 0;
  for (int threads : {1, 2, 4}) {
    ClusterConfig config = SmallCluster();
    config.execution_threads = threads;
    // Keep real threads even on single-core CI machines so the counts
    // are genuinely produced under preemptive interleaving.
    config.allow_thread_oversubscription = true;
    config.task_split_threshold = 12;
    ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan->plan);
    ASSERT_TRUE(result.ok()) << threads;
    EXPECT_EQ(result->execution_threads, threads);
    if (threads == 1) {
      serial_matches = result->total_matches;
    } else {
      EXPECT_EQ(result->total_matches, serial_matches) << threads;
    }
    EXPECT_EQ(result->adjacency_requests, result->cache_hits +
                                              result->db_queries +
                                              result->coalesced_fetches);
    EXPECT_EQ(result->task_virtual_us.size(), result->num_tasks);
  }
}

TEST(ClusterTest, ExecutionThreadsClampedToHardware) {
  auto raw = GenerateBarabasiAlbert(80, 4, 3);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("triangle")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  ClusterConfig config = SmallCluster();
  config.execution_threads = 4096;  // absurd oversubscription
  ClusterSimulator cluster(data, config);
  auto result = cluster.Run(plan->plan);
  ASSERT_TRUE(result.ok());
  if (hw > 0) {
    EXPECT_LE(result->execution_threads, hw);
  } else {
    EXPECT_EQ(result->execution_threads, 4096);  // unknown: not clamped
  }

  // The escape hatch preserves the configured count.
  config.allow_thread_oversubscription = true;
  config.execution_threads = 3;
  ClusterSimulator unclamped(data, config);
  auto result2 = unclamped.Run(plan->plan);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->execution_threads, 3);
  EXPECT_EQ(result2->total_matches, result->total_matches);
}

TEST(ClusterTest, ThreadInterleavingDoesNotChangeCounts) {
  // Two runs of the same plan with 4 oversubscribed execution threads
  // (plus a sequential reference) must agree on every logical count:
  // totals may not depend on which thread claimed which task.
  auto raw = GenerateBarabasiAlbert(180, 5, 91);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data),
                               {.optimize = true, .apply_vcbc = true});
  ASSERT_TRUE(plan.ok());
  ClusterConfig config = SmallCluster();
  config.execution_threads = 4;
  config.allow_thread_oversubscription = true;
  config.task_split_threshold = 10;

  ClusterConfig sequential = config;
  sequential.execution_threads = 1;
  sequential.max_runtime_threads = 1;
  ClusterSimulator reference(data, sequential);
  auto expected = reference.Run(plan->plan);
  ASSERT_TRUE(expected.ok());

  for (int run = 0; run < 2; ++run) {
    ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan->plan);
    ASSERT_TRUE(result.ok()) << run;
    EXPECT_EQ(result->total_matches, expected->total_matches) << run;
    EXPECT_EQ(result->total_codes, expected->total_codes) << run;
    EXPECT_EQ(result->code_units, expected->code_units) << run;
    EXPECT_EQ(result->num_tasks, expected->num_tasks) << run;
  }
}

TEST(ClusterTest, MakespanBoundsHold) {
  // List scheduling guarantees: max-task ≤ makespan ≤ busy, and
  // makespan ≥ busy / threads.
  auto raw = GenerateBarabasiAlbert(150, 5, 42);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("q4")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  ClusterConfig config = SmallCluster();
  config.threads_per_worker = 3;
  ClusterSimulator cluster(data, config);
  auto result = cluster.Run(plan->plan);
  ASSERT_TRUE(result.ok());
  double max_task = 0;
  for (double t : result->task_virtual_us) max_task = std::max(max_task, t);
  for (const WorkerSummary& w : result->workers) {
    EXPECT_LE(w.makespan_virtual_us, w.busy_virtual_us + 1e-6);
    EXPECT_GE(w.makespan_virtual_us + 1e-6,
              w.busy_virtual_us / config.threads_per_worker);
  }
  EXPECT_GE(result->virtual_seconds * 1e6 + 1e-6, max_task);
}

TEST(ClusterTest, VirtualTimeGrowsWithQueryLatency) {
  auto raw = GenerateBarabasiAlbert(120, 4, 52);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph p = std::move(GetPattern("triangle")).value();
  auto plan = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(plan.ok());
  ClusterConfig slow = SmallCluster();
  slow.db_cache_bytes = 0;
  slow.db_query_latency_us = 10000.0;
  ClusterConfig fast = slow;
  fast.db_query_latency_us = 0.0;
  fast.network_bytes_per_us = 1e12;
  ClusterSimulator a(data, slow);
  ClusterSimulator b(data, fast);
  auto ra = a.Run(plan->plan);
  auto rb = b.Run(plan->plan);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->total_matches, rb->total_matches);
  EXPECT_GT(ra->virtual_seconds, rb->virtual_seconds);
}

TEST(BenuDriverTest, EndToEndCount) {
  auto data = GenerateErdosRenyi(80, 320, 12);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("diamond")).value();
  auto expected = BruteForceCountSubgraphs(*data, p);
  ASSERT_TRUE(expected.ok());
  auto count = CountSubgraphs(*data, p);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, *expected);
}

TEST(BenuDriverTest, CompressedRunMatches) {
  auto data = GenerateBarabasiAlbert(150, 4, 77);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("q7")).value();
  BenuOptions options;
  options.cluster = SmallCluster();
  auto plain = RunBenu(*data, p, options);
  ASSERT_TRUE(plain.ok());
  options.plan.apply_vcbc = true;
  auto compressed = RunBenu(*data, p, options);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ(plain->run.total_matches, compressed->run.total_matches);
  // Compression emits fewer codes than matches.
  EXPECT_LE(compressed->run.total_codes, compressed->run.total_matches);
  // And a smaller payload than n entries per match.
  EXPECT_LE(compressed->run.code_units,
            plain->run.total_matches * p.NumVertices());
}

}  // namespace
}  // namespace benu
