// Edge-case tests for the plan executor: degenerate patterns, empty and
// tiny data graphs, compressed single-vertex cores, and stats accounting
// under unusual conditions.

#include <gtest/gtest.h>

#include <string>

#include "baselines/bruteforce.h"
#include "core/executor.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "plan/vcbc.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

Count RunAll(const ExecutionPlan& plan, const Graph& data) {
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan, &provider, &tcache);
  EXPECT_TRUE(executor.ok()) << executor.status().ToString();
  CountingConsumer consumer(plan);
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
  }
  return consumer.matches();
}

TEST(ExecutorEdgeTest, SingleEdgePattern) {
  // K2 in any graph counts each edge once (symmetry breaking halves the
  // 2M ordered matches).
  Graph edge = MakeClique(2);
  auto cs = ComputeSymmetryBreakingConstraints(edge);
  auto plan = GenerateRawPlan(edge, Identity(2), cs);
  ASSERT_TRUE(plan.ok());
  Graph data = MakeCycle(7);
  EXPECT_EQ(RunAll(*plan, data), data.NumEdges());
}

TEST(ExecutorEdgeTest, SingleVertexPattern) {
  auto one = Graph::FromEdges(1, {});
  ASSERT_TRUE(one.ok());
  auto plan = GenerateRawPlan(*one, {0}, {});
  ASSERT_TRUE(plan.ok());
  Graph data = MakeCycle(5);
  EXPECT_EQ(RunAll(*plan, data), data.NumVertices());
}

TEST(ExecutorEdgeTest, PatternLargerThanData) {
  Graph k5 = MakeClique(5);
  auto cs = ComputeSymmetryBreakingConstraints(k5);
  auto plan = GenerateRawPlan(k5, Identity(5), cs);
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());
  EXPECT_EQ(RunAll(*plan, MakeClique(4)), 0u);
}

TEST(ExecutorEdgeTest, EdgelessDataGraph) {
  auto data = Graph::FromEdges(10, {});
  ASSERT_TRUE(data.ok());
  Graph triangle = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(triangle);
  auto plan = GenerateRawPlan(triangle, Identity(3), cs);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(RunAll(*plan, *data), 0u);
}

TEST(ExecutorEdgeTest, StarPatternCompressedToSingleCoreVertex) {
  // Star with 3 leaves: core = {center}; all leaves are SE non-core with
  // chain constraints, exercising the C(s, k) expansion fast path.
  Graph star = MakeStar(3);
  auto cs = ComputeSymmetryBreakingConstraints(star);
  // Matching order starting at the center.
  auto plan = GenerateRawPlan(star, {0, 1, 2, 3}, cs);
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());
  ASSERT_TRUE(ApplyVcbcCompression(&plan.value()).ok());
  EXPECT_EQ(plan->core_vertices.size(), 1u);

  auto data = GenerateBarabasiAlbert(80, 3, 12);
  ASSERT_TRUE(data.ok());
  auto expected = BruteForceCount(*data, star, cs);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(RunAll(*plan, *data), *expected);
}

TEST(ExecutorEdgeTest, DisconnectedMatchingOrderPrefixWorks) {
  // Path 0-1-2 matched 0,2,1: the executor hits the V(G) fast path with
  // injective + order filters.
  Graph path = MakePath(3);
  auto cs = ComputeSymmetryBreakingConstraints(path);  // 0 < 2
  auto plan = GenerateRawPlan(path, {0, 2, 1}, cs);
  ASSERT_TRUE(plan.ok());
  auto data = GenerateErdosRenyi(30, 60, 9);
  ASSERT_TRUE(data.ok());
  auto expected = BruteForceCount(*data, path, cs);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(RunAll(*plan, *data), *expected);
}

TEST(ExecutorEdgeTest, SubtaskSliceBeyondCandidatesIsEmpty) {
  Graph data = MakeClique(5);
  Graph triangle = MakeClique(3);
  auto result = GenerateBestPlan(triangle, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(result.ok());
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&result->plan, &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  CountingConsumer consumer(result->plan);
  // Splitting into more subtasks than candidates: the extra slices are
  // empty ranges, and the union still covers everything exactly once.
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    for (uint32_t s = 0; s < 64; ++s) {
      (*executor)->RunTask(SearchTask{v, s, 64}, &consumer);
    }
  }
  EXPECT_EQ(consumer.matches(), 10u);  // C(5,3)
}

TEST(ExecutorEdgeTest, CompressedCollectingMatchesUncompressed) {
  // CollectingConsumer expands compressed codes into full matches; the
  // sorted match sets of compressed and uncompressed runs must be equal.
  auto data = GenerateErdosRenyi(35, 120, 44);
  ASSERT_TRUE(data.ok());
  for (const std::string name : {"q4", "q5", "q8"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
    ASSERT_TRUE(plan.ok());
    OptimizePlan(&plan.value());
    ExecutionPlan compressed = *plan;
    ASSERT_TRUE(ApplyVcbcCompression(&compressed).ok());

    auto collect = [&](const ExecutionPlan& which) {
      DirectAdjacencyProvider provider(&*data);
      TriangleCache tcache;
      auto executor = PlanExecutor::Create(&which, &provider, &tcache);
      EXPECT_TRUE(executor.ok());
      CollectingConsumer consumer(which);
      for (VertexId v = 0; v < data->NumVertices(); ++v) {
        (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
      }
      return consumer.Sorted();
    };
    EXPECT_EQ(collect(*plan), collect(compressed)) << name;
  }
}

TEST(ExecutorEdgeTest, StatsCountIntersectionsAndRequests) {
  Graph data = MakeClique(6);
  Graph triangle = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(triangle);
  auto plan = GenerateRawPlan(triangle, Identity(3), cs);
  ASSERT_TRUE(plan.ok());
  DirectAdjacencyProvider provider(&data);
  auto executor = PlanExecutor::Create(&plan.value(), &provider, nullptr);
  ASSERT_TRUE(executor.ok());
  CountingConsumer consumer(*plan);
  TaskStats stats = (*executor)->RunTask(SearchTask{0, 0, 1}, &consumer);
  EXPECT_GT(stats.adjacency_requests, 0u);
  EXPECT_GT(stats.intersections, 0u);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(ExecutorEdgeTest, ReusedExecutorIsStateless) {
  // Running the same task twice must double the count exactly: no state
  // leaks across RunTask calls.
  auto data = GenerateErdosRenyi(40, 150, 2);
  ASSERT_TRUE(data.ok());
  Graph diamond = std::move(GetPattern("diamond")).value();
  auto result = GenerateBestPlan(diamond, DataGraphStats::FromGraph(*data));
  ASSERT_TRUE(result.ok());
  DirectAdjacencyProvider provider(&*data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&result->plan, &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  CountingConsumer once(result->plan);
  CountingConsumer twice(result->plan);
  for (VertexId v = 0; v < data->NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &once);
    (*executor)->RunTask(SearchTask{v, 0, 1}, &twice);
    (*executor)->RunTask(SearchTask{v, 0, 1}, &twice);
  }
  EXPECT_EQ(twice.matches(), 2 * once.matches());
}

TEST(ExecutorEdgeTest, TriangleCacheSharingAcrossSubtasksIsConsistent) {
  // Subtasks of one start vertex share the warm triangle cache; counts
  // must match the unsplit run.
  auto data = GenerateBarabasiAlbert(100, 5, 8);
  ASSERT_TRUE(data.ok());
  Graph relabeled = data->RelabelByDegree();
  Graph k4 = MakeClique(4);
  auto result = GenerateBestPlan(k4, DataGraphStats::FromGraph(relabeled));
  ASSERT_TRUE(result.ok());
  DirectAdjacencyProvider provider(&relabeled);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&result->plan, &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  CountingConsumer split(result->plan);
  CountingConsumer whole(result->plan);
  for (VertexId v = 0; v < relabeled.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &whole);
  }
  for (VertexId v = 0; v < relabeled.NumVertices(); ++v) {
    for (uint32_t s = 0; s < 3; ++s) {
      (*executor)->RunTask(SearchTask{v, s, 3}, &split);
    }
  }
  EXPECT_EQ(split.matches(), whole.matches());
  EXPECT_GT(tcache.stats().hits + tcache.stats().misses, 0u);
}

}  // namespace
}  // namespace benu
