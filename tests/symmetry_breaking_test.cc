#include "plan/symmetry_breaking.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/isomorphism.h"
#include "graph/patterns.h"

namespace benu {
namespace {

// For every automorphism class of matches there must be exactly one
// representative satisfying the constraints. Verified directly on the
// pattern matched against itself under every vertex relabeling... here we
// verify the core property: the number of permutations of {0..n-1}
// satisfying the constraints times |Aut(P)| equals n!.
size_t CountSatisfyingPermutations(const Graph& pattern,
                                   const std::vector<OrderConstraint>& cs) {
  const size_t n = pattern.NumVertices();
  std::vector<VertexId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  size_t count = 0;
  do {
    if (SatisfiesConstraints(cs, perm)) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

size_t Factorial(size_t n) {
  size_t f = 1;
  for (size_t i = 2; i <= n; ++i) f *= i;
  return f;
}

TEST(SymmetryBreakingTest, TriangleGetsTotalOrder) {
  Graph triangle = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(triangle);
  // All 3 vertices are in one orbit: constraints force a unique ordering.
  EXPECT_EQ(CountSatisfyingPermutations(triangle, cs), 1u);
}

TEST(SymmetryBreakingTest, AsymmetricPatternNeedsNoConstraints) {
  auto g =
      Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {2, 4}, {4, 5}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ComputeSymmetryBreakingConstraints(*g).empty());
}

TEST(SymmetryBreakingTest, SatisfiedCountTimesAutGroupIsFactorial) {
  // The defining property of a correct symmetry-breaking partial order:
  // among the n! bijections V(P) -> {distinct values}, exactly
  // n!/|Aut(P)| satisfy the constraints (one per automorphism class).
  for (const std::string name :
       {"triangle", "square", "diamond", "clique4", "clique5", "q1", "q2",
        "q3", "q4", "q5", "q6", "q7", "q8", "q9"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    const size_t n = p.NumVertices();
    const size_t aut = Automorphisms(p).size();
    EXPECT_EQ(CountSatisfyingPermutations(p, cs) * aut, Factorial(n))
        << name;
  }
}

TEST(SymmetryBreakingTest, ConstraintsAreAcyclic) {
  for (const std::string name : {"clique5", "q5", "q8"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    // An identity assignment ordered by any topological order must exist;
    // a simple check: no constraint pair appears in both directions.
    std::set<std::pair<VertexId, VertexId>> seen;
    for (const auto& c : cs) {
      EXPECT_EQ(seen.count({c.second, c.first}), 0u) << name;
      seen.insert({c.first, c.second});
    }
  }
}

TEST(SatisfiesConstraintsTest, Basic) {
  std::vector<OrderConstraint> cs = {{0, 1}};
  EXPECT_TRUE(SatisfiesConstraints(cs, {3, 5}));
  EXPECT_FALSE(SatisfiesConstraints(cs, {5, 3}));
  EXPECT_FALSE(SatisfiesConstraints(cs, {5, 5}));
  EXPECT_TRUE(SatisfiesConstraints({}, {5, 3}));
}

}  // namespace
}  // namespace benu
