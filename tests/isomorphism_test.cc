#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"

namespace benu {
namespace {

TEST(AutomorphismsTest, TriangleHasSixAutomorphisms) {
  EXPECT_EQ(Automorphisms(MakeClique(3)).size(), 6u);
}

TEST(AutomorphismsTest, CliqueHasFactorial) {
  EXPECT_EQ(Automorphisms(MakeClique(4)).size(), 24u);
  EXPECT_EQ(Automorphisms(MakeClique(5)).size(), 120u);
}

TEST(AutomorphismsTest, CycleHasDihedralGroup) {
  EXPECT_EQ(Automorphisms(MakeCycle(5)).size(), 10u);
  EXPECT_EQ(Automorphisms(MakeCycle(6)).size(), 12u);
}

TEST(AutomorphismsTest, PathHasTwo) {
  EXPECT_EQ(Automorphisms(MakePath(4)).size(), 2u);
}

TEST(AutomorphismsTest, MirrorSymmetricGraphHasExactlyTwo) {
  // 0-1-2-3 path with chord 1-3 and tail 3-4: its only non-identity
  // automorphism is the mirror (0↔4, 1↔3).
  auto g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {1, 3}, {3, 4}});
  ASSERT_TRUE(g.ok());
  auto autos = Automorphisms(*g);
  ASSERT_EQ(autos.size(), 2u);
}

TEST(AutomorphismsTest, AsymmetricGraphHasOnlyIdentity) {
  // Triangle 0-1-2 with a 1-edge tail at 1 and a 2-edge tail at 2: the
  // two tails have different lengths, so no symmetry survives.
  auto g =
      Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {2, 4}, {4, 5}});
  ASSERT_TRUE(g.ok());
  auto autos = Automorphisms(*g);
  ASSERT_EQ(autos.size(), 1u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(autos[0][v], v);
}

TEST(AutomorphismsTest, EveryAutomorphismPreservesEdges) {
  Graph q1 = std::move(GetPattern("q1")).value();
  for (const Permutation& a : Automorphisms(q1)) {
    for (const auto& [u, v] : q1.Edges()) {
      EXPECT_TRUE(q1.HasEdge(a[u], a[v]));
    }
  }
}

TEST(AreIsomorphicTest, CycleVsPath) {
  EXPECT_FALSE(AreIsomorphic(MakeCycle(4), MakePath(4)));
  EXPECT_TRUE(AreIsomorphic(MakeCycle(4), MakeCycle(4)));
}

TEST(AreIsomorphicTest, RelabeledGraphsAreIsomorphic) {
  auto a = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  auto b = Graph::FromEdges(4, {{3, 2}, {2, 0}, {0, 1}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AreIsomorphic(*a, *b));
}

TEST(AreIsomorphicTest, SameDegreeSequenceDifferentStructure) {
  // C6 vs two triangles: both 6 vertices, all degree 2.
  auto two_triangles =
      Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  ASSERT_TRUE(two_triangles.ok());
  EXPECT_FALSE(AreIsomorphic(MakeCycle(6), *two_triangles));
}

TEST(SyntacticEquivalenceTest, SquareOpposites) {
  // In C4, opposite vertices share both neighbors.
  Graph square = MakeCycle(4);
  EXPECT_TRUE(SyntacticallyEquivalent(square, 0, 2));
  EXPECT_TRUE(SyntacticallyEquivalent(square, 1, 3));
  EXPECT_FALSE(SyntacticallyEquivalent(square, 0, 1));
}

TEST(SyntacticEquivalenceTest, CliqueAllEquivalent) {
  Graph k4 = MakeClique(4);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_TRUE(SyntacticallyEquivalent(k4, u, v));
    }
  }
}

TEST(SyntacticEquivalenceTest, StarLeaves) {
  Graph star = MakeStar(3);
  EXPECT_TRUE(SyntacticallyEquivalent(star, 1, 2));
  EXPECT_FALSE(SyntacticallyEquivalent(star, 0, 1));
}

TEST(VertexCoverTest, IsVertexCoverChecks) {
  Graph square = MakeCycle(4);
  EXPECT_TRUE(IsVertexCover(square, {0, 2}));
  EXPECT_TRUE(IsVertexCover(square, {1, 3}));
  EXPECT_FALSE(IsVertexCover(square, {0, 1}));
  EXPECT_FALSE(IsVertexCover(square, {0}));
}

TEST(VertexCoverTest, MinimumCoverSizes) {
  EXPECT_EQ(MinimumVertexCover(MakeCycle(4)).size(), 2u);
  EXPECT_EQ(MinimumVertexCover(MakeCycle(5)).size(), 3u);
  EXPECT_EQ(MinimumVertexCover(MakeClique(5)).size(), 4u);
  EXPECT_EQ(MinimumVertexCover(MakeStar(6)).size(), 1u);
  Graph q4 = std::move(GetPattern("q4")).value();
  EXPECT_EQ(MinimumVertexCover(q4).size(), 3u);
}

TEST(VertexCoverTest, MinimumCoverIsACover) {
  for (const std::string& name : AllPatternNames()) {
    Graph p = std::move(GetPattern(name)).value();
    EXPECT_TRUE(IsVertexCover(p, MinimumVertexCover(p))) << name;
  }
}

TEST(VertexCoverTest, EdgelessGraphHasEmptyCover) {
  auto g = Graph::FromEdges(3, {});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(MinimumVertexCover(*g).empty());
}

}  // namespace
}  // namespace benu
