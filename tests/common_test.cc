#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace benu {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad vertex");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad vertex");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBounded(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  int64_t a = watch.ElapsedMicros();
  int64_t b = watch.ElapsedMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();  // must not deadlock or double-join
}

TEST(ThreadPoolTest, SubmitAfterShutdownDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.Shutdown();
        pool.Submit([] {});
      },
      "Submit called after shutdown");
}

}  // namespace
}  // namespace benu
