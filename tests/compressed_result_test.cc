#include "core/compressed_result.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace benu {
namespace {

using Pair = std::pair<int, int>;

VertexSet Make(std::initializer_list<VertexId> values) {
  return VertexSet(values);
}

// Oracle: count via explicit enumeration.
Count Oracle(const std::vector<VertexSet>& sets,
             const std::vector<Pair>& constraints) {
  std::vector<VertexSetView> views(sets.begin(), sets.end());
  return EnumerateInjectiveAssignments(views, constraints).size();
}

Count Fast(const std::vector<VertexSet>& sets,
           const std::vector<Pair>& constraints) {
  std::vector<VertexSetView> views(sets.begin(), sets.end());
  return CountInjectiveAssignments(views, constraints);
}

TEST(CountInjectiveTest, NoSetsCountsOne) {
  EXPECT_EQ(Fast({}, {}), 1u);
}

TEST(CountInjectiveTest, SingleSet) {
  EXPECT_EQ(Fast({Make({1, 5, 9})}, {}), 3u);
  EXPECT_EQ(Fast({Make({})}, {}), 0u);
}

TEST(CountInjectiveTest, TwoDisjointSetsMultiply) {
  EXPECT_EQ(Fast({Make({1, 2}), Make({3, 4, 5})}, {}), 6u);
}

TEST(CountInjectiveTest, TwoIdenticalSets) {
  // |S|^2 - |S| ordered injective pairs.
  EXPECT_EQ(Fast({Make({1, 2, 3}), Make({1, 2, 3})}, {}), 6u);
}

TEST(CountInjectiveTest, OrderedPairMerge) {
  // x from {1,4,7}, y from {2,5}: pairs with x<y: (1,2),(1,5),(4,5) = 3.
  EXPECT_EQ(Fast({Make({1, 4, 7}), Make({2, 5})}, {{0, 1}}), 3u);
}

TEST(CountInjectiveTest, TotalChainOfIdenticalSets) {
  // 3 identical sets of size 5, total order: C(5,3) = 10.
  VertexSet s = Make({1, 2, 3, 4, 5});
  EXPECT_EQ(Fast({s, s, s}, {{0, 1}, {1, 2}}), 10u);
  // Transitively closed chain gives the same answer.
  EXPECT_EQ(Fast({s, s, s}, {{0, 1}, {1, 2}, {0, 2}}), 10u);
}

TEST(CountInjectiveTest, ThreeSetsPartitionFormula) {
  // Verified against the enumeration oracle.
  std::vector<VertexSet> sets = {Make({1, 2, 3}), Make({2, 3, 4}),
                                 Make({3, 4, 5})};
  EXPECT_EQ(Fast(sets, {}), Oracle(sets, {}));
}

TEST(CountInjectiveTest, RandomizedAgainstOracle) {
  Rng rng(42);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t k = 1 + rng.NextBounded(4);
    std::vector<VertexSet> sets(k);
    for (auto& s : sets) {
      const size_t size = rng.NextBounded(8);
      for (size_t i = 0; i < size; ++i) {
        s.push_back(static_cast<VertexId>(rng.NextBounded(12)));
      }
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
    }
    std::vector<Pair> constraints;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        if (rng.NextBernoulli(0.3)) {
          constraints.push_back({static_cast<int>(i), static_cast<int>(j)});
        }
      }
    }
    EXPECT_EQ(Fast(sets, constraints), Oracle(sets, constraints))
        << "trial " << trial;
  }
}

TEST(EnumerateInjectiveTest, ProducesDistinctOrderedTuples) {
  std::vector<VertexSetView> views;
  VertexSet a = Make({1, 2});
  VertexSet b = Make({1, 2, 3});
  views.push_back(a);
  views.push_back(b);
  auto all = EnumerateInjectiveAssignments(views, {{0, 1}});
  // (1,2),(1,3),(2,3).
  ASSERT_EQ(all.size(), 3u);
  for (const auto& tuple : all) EXPECT_LT(tuple[0], tuple[1]);
}

TEST(EnumerateInjectiveTest, EmptySetsYieldNothing) {
  std::vector<VertexSetView> views;
  VertexSet empty;
  views.push_back(empty);
  EXPECT_TRUE(EnumerateInjectiveAssignments(views, {}).empty());
}

}  // namespace
}  // namespace benu
