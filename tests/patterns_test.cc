#include "graph/patterns.h"

#include <gtest/gtest.h>

#include "graph/isomorphism.h"

namespace benu {
namespace {

TEST(PatternsTest, BasicMotifs) {
  auto triangle = GetPattern("triangle");
  ASSERT_TRUE(triangle.ok());
  EXPECT_EQ(triangle->NumVertices(), 3u);
  EXPECT_EQ(triangle->NumEdges(), 3u);

  auto square = GetPattern("square");
  ASSERT_TRUE(square.ok());
  EXPECT_EQ(square->NumVertices(), 4u);
  EXPECT_EQ(square->NumEdges(), 4u);

  auto diamond = GetPattern("diamond");
  ASSERT_TRUE(diamond.ok());
  EXPECT_EQ(diamond->NumVertices(), 4u);
  EXPECT_EQ(diamond->NumEdges(), 5u);
  auto alias = GetPattern("chordal-square");
  ASSERT_TRUE(alias.ok());
  EXPECT_TRUE(AreIsomorphic(*diamond, *alias));
}

TEST(PatternsTest, CliquesOfAnySize) {
  for (size_t k = 2; k <= 8; ++k) {
    auto clique = GetPattern("clique" + std::to_string(k));
    ASSERT_TRUE(clique.ok());
    EXPECT_EQ(clique->NumVertices(), k);
    EXPECT_EQ(clique->NumEdges(), k * (k - 1) / 2);
  }
  EXPECT_FALSE(GetPattern("clique1").ok());
  EXPECT_FALSE(GetPattern("cliqueX").ok());
}

TEST(PatternsTest, Fig6SizeConstraints) {
  // q1-q5 have 5 vertices; q6-q9 have 6 (the paper's stated sizes).
  for (const std::string name : {"q1", "q2", "q3", "q4", "q5"}) {
    auto q = GetPattern(name);
    ASSERT_TRUE(q.ok()) << name;
    EXPECT_EQ(q->NumVertices(), 5u) << name;
    EXPECT_TRUE(q->IsConnected()) << name;
  }
  for (const std::string name : {"q6", "q7", "q8", "q9"}) {
    auto q = GetPattern(name);
    ASSERT_TRUE(q.ok()) << name;
    EXPECT_EQ(q->NumVertices(), 6u) << name;
    EXPECT_TRUE(q->IsConnected()) << name;
  }
}

TEST(PatternsTest, Q7ToQ9ContainDiamondCore) {
  // "The hard test cases q7 to q9 shared the same core structure, i.e.
  // the chordal square." The first four vertices induce the diamond.
  Graph diamond = std::move(GetPattern("diamond")).value();
  for (const std::string name : {"q7", "q8", "q9"}) {
    Graph q = std::move(GetPattern(name)).value();
    auto core = q.InducedSubgraph({0, 1, 2, 3});
    ASSERT_TRUE(core.ok());
    EXPECT_TRUE(AreIsomorphic(*core, diamond)) << name;
  }
}

TEST(PatternsTest, Q5IsTheFiveCycle) {
  Graph q5 = std::move(GetPattern("q5")).value();
  EXPECT_TRUE(AreIsomorphic(q5, MakeCycle(5)));
}

TEST(PatternsTest, QueriesPairwiseNonIsomorphic) {
  auto names = Fig6QueryNames();
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      Graph a = std::move(GetPattern(names[i])).value();
      Graph b = std::move(GetPattern(names[j])).value();
      EXPECT_FALSE(AreIsomorphic(a, b)) << names[i] << " vs " << names[j];
    }
  }
}

TEST(PatternsTest, UnknownNameFails) {
  EXPECT_EQ(GetPattern("q10").status().code(), StatusCode::kNotFound);
}

TEST(PatternsTest, AllPatternNamesResolve) {
  for (const std::string& name : AllPatternNames()) {
    EXPECT_TRUE(GetPattern(name).ok()) << name;
  }
}

TEST(MakersTest, CyclePathStar) {
  EXPECT_EQ(MakeCycle(6).NumEdges(), 6u);
  EXPECT_EQ(MakePath(6).NumEdges(), 5u);
  EXPECT_EQ(MakeStar(6).NumEdges(), 6u);
  EXPECT_EQ(MakeStar(6).NumVertices(), 7u);
}

}  // namespace
}  // namespace benu
