#include "baselines/join_based.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/bruteforce.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

TEST(DecompositionTest, CoversEveryEdgeAndConnects) {
  for (const std::string& name : AllPatternNames()) {
    Graph p = std::move(GetPattern(name)).value();
    for (bool triangles : {true, false}) {
      auto units = DecomposeIntoJoinUnits(p, triangles);
      std::set<std::pair<VertexId, VertexId>> covered;
      std::set<VertexId> seen;
      for (size_t i = 0; i < units.size(); ++i) {
        const auto& unit = units[i];
        // Units after the first must share a vertex with earlier ones.
        if (i > 0) {
          bool shares = false;
          for (VertexId u : unit) shares = shares || seen.count(u) > 0;
          EXPECT_TRUE(shares) << name;
        }
        for (size_t a = 0; a < unit.size(); ++a) {
          seen.insert(unit[a]);
          for (size_t b = a + 1; b < unit.size(); ++b) {
            EXPECT_TRUE(p.HasEdge(unit[a], unit[b])) << name;
            VertexId x = std::min(unit[a], unit[b]);
            VertexId y = std::max(unit[a], unit[b]);
            covered.insert({x, y});
          }
        }
      }
      EXPECT_EQ(covered.size(), p.NumEdges()) << name;
    }
  }
}

TEST(DecompositionTest, TriangleUnitsUsedWhenAvailable) {
  auto units = DecomposeIntoJoinUnits(MakeClique(4), true);
  bool has_triangle_unit = false;
  for (const auto& unit : units) has_triangle_unit |= unit.size() == 3;
  EXPECT_TRUE(has_triangle_unit);
  auto edge_units = DecomposeIntoJoinUnits(MakeClique(4), false);
  for (const auto& unit : edge_units) EXPECT_EQ(unit.size(), 2u);
}

TEST(JoinBasedTest, MatchesBruteForceAcrossPatterns) {
  auto data = GenerateErdosRenyi(50, 200, 15);
  ASSERT_TRUE(data.ok());
  for (const std::string name :
       {"triangle", "square", "diamond", "clique4", "q1", "q4", "q5", "q7"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto expected = BruteForceCount(*data, p, cs);
    ASSERT_TRUE(expected.ok());
    for (bool triangles : {true, false}) {
      JoinBasedConfig config;
      config.use_triangle_units = triangles;
      auto result = RunJoinBased(*data, p, cs, config);
      ASSERT_TRUE(result.ok()) << name;
      EXPECT_EQ(result->matches, *expected)
          << name << " triangles=" << triangles;
    }
  }
}

TEST(JoinBasedTest, TriangleUnitsBuildTheIndex) {
  auto data = GenerateBarabasiAlbert(200, 4, 18);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("clique4")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto result = RunJoinBased(*data, p, cs, JoinBasedConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->index_bytes, 0u);
}

TEST(JoinBasedTest, ShufflesPartialResults) {
  auto data = GenerateBarabasiAlbert(200, 4, 19);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("q5")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto result = RunJoinBased(*data, p, cs, JoinBasedConfig{});
  ASSERT_TRUE(result.ok());
  // C5 joins at least twice: partial results are shuffled.
  EXPECT_GT(result->shuffled_tuples, 0u);
  EXPECT_GT(result->shuffled_bytes, 0u);
}

TEST(JoinBasedTest, IntermediateBudgetTriggersCrash) {
  auto data = GenerateBarabasiAlbert(400, 8, 20);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("q5")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  JoinBasedConfig config;
  config.max_intermediate_tuples = 50;
  auto result = RunJoinBased(*data, p, cs, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(JoinBasedTest, RejectsDegeneratePatterns) {
  Graph empty;
  EXPECT_FALSE(RunJoinBased(MakeClique(3), empty, {}, JoinBasedConfig{}).ok());
}

}  // namespace
}  // namespace benu
