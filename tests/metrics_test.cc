#include "common/metrics.h"

#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/transport.h"

namespace benu {
namespace {

using metrics::MetricsRegistry;
using metrics::MetricsSnapshot;
using metrics::SnapshotEntry;

// Restores the global tracing flag on scope exit so tests compose.
class ScopedTracing {
 public:
  explicit ScopedTracing(bool enabled) : prev_(metrics::TracingEnabled()) {
    metrics::SetTracingEnabled(enabled);
  }
  ~ScopedTracing() { metrics::SetTracingEnabled(prev_); }

 private:
  bool prev_;
};

const SnapshotEntry* Find(const MetricsSnapshot& snapshot,
                          const std::string& name) {
  for (const SnapshotEntry& entry : snapshot.entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  const SnapshotEntry* entry = Find(snapshot, name);
  return entry == nullptr ? 0 : entry->counter_value;
}

TEST(CounterTest, ConcurrentHammerIsExact) {
  metrics::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(HistogramTest, ConcurrentHammerIsExact) {
  metrics::Histogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kSamplesPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kSamplesPerThread; ++i) {
        hist.Record((i + static_cast<uint64_t>(t)) % 1024);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.Count(), kThreads * kSamplesPerThread);
  uint64_t bucket_total = 0;
  uint64_t expected_sum = 0;
  for (size_t b = 0; b < metrics::Histogram::kNumBuckets; ++b) {
    bucket_total += hist.BucketCount(b);
  }
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kSamplesPerThread; ++i) {
      expected_sum += (i + static_cast<uint64_t>(t)) % 1024;
    }
  }
  EXPECT_EQ(bucket_total, hist.Count());
  EXPECT_EQ(hist.Sum(), expected_sum);
}

TEST(HistogramTest, LogBucketing) {
  using metrics::Histogram;
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

TEST(GaugeTest, SetAndAdd) {
  metrics::Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 4.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(RegistryTest, SameNameSameInstrument) {
  auto& registry = MetricsRegistry::Global();
  metrics::Counter* a = registry.GetCounter("test.registry.same", "1");
  metrics::Counter* b = registry.GetCounter("test.registry.same", "1");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("test.sort.b", "1");
  registry.GetCounter("test.sort.a", "1");
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (size_t i = 1; i < snapshot.entries.size(); ++i) {
    EXPECT_LT(snapshot.entries[i - 1].name, snapshot.entries[i].name);
  }
}

BenuOptions SingleThreadedOptions() {
  BenuOptions options;
  options.cluster.num_workers = 2;
  options.cluster.threads_per_worker = 2;
  options.cluster.execution_threads = 1;
  options.cluster.max_runtime_threads = 1;
  options.cluster.db_cache_bytes = 4u << 20;
  options.cluster.task_split_threshold = 100;
  options.cluster.prefetch_budget = 16;
  options.cluster.force_sync_prefetch = true;
  options.plan.apply_vcbc = true;
  return options;
}

// With tracing disabled, a snapshot is a pure function of the work
// performed — no wall-clock-derived instrument is written — so two
// identical single-threaded runs must serialize to byte-identical JSON.
TEST(MetricsIntegrationTest, SnapshotJsonIsDeterministic) {
  ScopedTracing tracing(false);
  Graph data = std::move(GenerateErdosRenyi(300, 2400, /*seed=*/11)).value();
  Graph pattern = std::move(GetPattern("q5")).value();
  const BenuOptions options = SingleThreadedOptions();

  auto run_once = [&] {
    MetricsRegistry::Global().ResetValues();
    auto result = RunBenu(data, pattern, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return MetricsRegistry::Global().Snapshot().ToJson();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"counters\""), std::string::npos);
}

// The legacy ClusterRunResult fields and their registry counterparts are
// produced by independent accumulation paths; after a single run from a
// zeroed registry they must agree exactly.
TEST(MetricsIntegrationTest, ClusterRunResultMatchesRegistry) {
  ScopedTracing tracing(false);
  MetricsRegistry::Global().ResetValues();
  Graph data = std::move(GenerateErdosRenyi(400, 3200, /*seed=*/5)).value();
  Graph pattern = std::move(GetPattern("q5")).value();
  auto result = RunBenu(data, pattern, SingleThreadedOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ClusterRunResult& run = result->run;

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "cluster.runs"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "cluster.tasks"), run.num_tasks);
  EXPECT_EQ(CounterValue(snapshot, "cluster.matches"), run.total_matches);
  EXPECT_EQ(CounterValue(snapshot, "cluster.codes"), run.total_codes);
  EXPECT_EQ(CounterValue(snapshot, "cluster.code_units"), run.code_units);
  EXPECT_EQ(CounterValue(snapshot, "cluster.db_queries"), run.db_queries);
  EXPECT_EQ(CounterValue(snapshot, "cluster.bytes_fetched"),
            run.bytes_fetched);
  EXPECT_EQ(CounterValue(snapshot, "cluster.adjacency_requests"),
            run.adjacency_requests);
  EXPECT_EQ(CounterValue(snapshot, "cluster.cache_hits"), run.cache_hits);
  EXPECT_EQ(CounterValue(snapshot, "cluster.coalesced_fetches"),
            run.coalesced_fetches);
  EXPECT_EQ(CounterValue(snapshot, "cluster.steals"), run.steals);
  EXPECT_EQ(CounterValue(snapshot, "cluster.prefetches_issued"),
            run.prefetches_issued);
  EXPECT_EQ(CounterValue(snapshot, "cluster.prefetch_hits"),
            run.prefetch_hits);
  EXPECT_EQ(CounterValue(snapshot, "cluster.prefetch_wasted"),
            run.prefetch_wasted);
  EXPECT_EQ(CounterValue(snapshot, "cluster.prefetch_round_trips"),
            run.prefetch_round_trips);
  EXPECT_EQ(CounterValue(snapshot, "cluster.prefetch_bytes"),
            run.prefetch_bytes);

  // The per-worker DB caches publish the same events the task stats
  // classify, just from the cache side of the interface.
  EXPECT_EQ(CounterValue(snapshot, "db_cache.hits"), run.cache_hits);
  EXPECT_EQ(CounterValue(snapshot, "db_cache.coalesced"),
            run.coalesced_fetches);
  // Every synchronous task query is a cache miss; the store additionally
  // saw the prefetch pipeline's batched queries.
  EXPECT_EQ(CounterValue(snapshot, "db_cache.misses"), run.db_queries);
  EXPECT_EQ(CounterValue(snapshot, "kv_store.round_trips"),
            run.db_queries + run.prefetch_round_trips);
  EXPECT_EQ(CounterValue(snapshot, "kv_store.bytes_fetched"),
            run.bytes_fetched + run.prefetch_bytes);
}

// Registry updates from many threads hammering the same instruments
// through real subsystems (thread pool + scheduler): totals stay exact.
// This test runs under TSan in CI.
TEST(MetricsIntegrationTest, ConcurrentSubsystemPublishing) {
  MetricsRegistry::Global().ResetValues();
  constexpr size_t kTasks = 2000;
  {
    ThreadPool pool(4);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([] {
        MetricsRegistry::Global()
            .GetCounter("test.concurrent.bumps", "1")
            ->Add(1);
      });
    }
    pool.Wait();
  }
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "test.concurrent.bumps"), kTasks);
  EXPECT_EQ(CounterValue(snapshot, "thread_pool.tasks_executed"), kTasks);
  EXPECT_EQ(CounterValue(snapshot, "thread_pool.threads_spawned"), 4u);
}

// The same workload over the simulated and the loopback backend must
// produce identical per-backend transport counters: the loopback path
// round-trips every request through the wire protocol, and its frame
// header is by construction the simulated model's per-reply overhead,
// so fetches / batch_gets / round_trips / bytes all line up exactly.
TEST(MetricsIntegrationTest, TransportBackendCountersAgree) {
  ScopedTracing tracing(false);
  Graph data = std::move(GenerateErdosRenyi(300, 2400, /*seed=*/17))
                   .value()
                   .RelabelByDegree();
  Graph pattern = std::move(GetPattern("q5")).value();
  BenuOptions options = SingleThreadedOptions();
  options.relabel_by_degree = false;  // ids fixed: share one graph
  options.cluster.db_partitions = 4;

  auto run_with = [&](std::shared_ptr<Transport> transport) {
    MetricsRegistry::Global().ResetValues();
    options.cluster.transport = std::move(transport);
    auto result = RunBenu(data, pattern, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return MetricsRegistry::Global().Snapshot();
  };
  const MetricsSnapshot sim = run_with(nullptr);
  const MetricsSnapshot loopback = run_with(MakeLoopbackTransport(data, 4));

  for (const char* leaf : {"fetches", "batch_gets", "round_trips", "bytes"}) {
    const std::string sim_name = std::string("transport.sim.") + leaf;
    const std::string loop_name = std::string("transport.loopback.") + leaf;
    EXPECT_GT(CounterValue(sim, sim_name), 0u) << sim_name;
    EXPECT_EQ(CounterValue(sim, sim_name), CounterValue(loopback, loop_name))
        << leaf;
    // Each run exercised exactly one backend.
    EXPECT_EQ(CounterValue(sim, loop_name), 0u) << loop_name;
    EXPECT_EQ(CounterValue(loopback, sim_name), 0u) << sim_name;
  }
  // The KV-client aggregates sit above the transport and must agree
  // with the backend's own accounting in both runs.
  for (const MetricsSnapshot* snapshot : {&sim, &loopback}) {
    const char* backend = snapshot == &sim ? "sim" : "loopback";
    EXPECT_EQ(CounterValue(*snapshot, "kv_store.round_trips"),
              CounterValue(*snapshot,
                           std::string("transport.") + backend +
                               ".round_trips"));
    EXPECT_EQ(CounterValue(*snapshot, "kv_store.bytes_fetched"),
              CounterValue(*snapshot,
                           std::string("transport.") + backend + ".bytes"));
  }
}

// Every instrument that can appear in a traced end-to-end run (the
// superset of what examples/metrics_dump prints) must be documented in
// docs/metrics.md — the reference table and the code cannot drift apart
// silently.
TEST(MetricsIntegrationTest, DocsListEveryEmittedInstrument) {
  ScopedTracing tracing(true);
  MetricsRegistry::Global().ResetValues();
  Graph data = std::move(GenerateErdosRenyi(300, 2400, /*seed=*/3)).value();
  // clique4 exercises TRC + the triangle cache; q5 covers the rest.
  for (const char* name : {"q5", "clique4"}) {
    Graph pattern = std::move(GetPattern(name)).value();
    // Async prefetch + 2 execution threads: fetch pool, steals and the
    // coalesced/claimed paths all become reachable.
    BenuOptions options = SingleThreadedOptions();
    options.cluster.force_sync_prefetch = false;
    options.cluster.execution_threads = 2;
    options.cluster.max_runtime_threads = 0;
    auto result = RunBenu(data, pattern, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  std::ifstream docs(std::string(BENU_SOURCE_DIR) + "/docs/metrics.md");
  ASSERT_TRUE(docs.is_open()) << "docs/metrics.md not found";
  std::set<std::string> documented;
  std::string line;
  while (std::getline(docs, line)) {
    // Collect every `backtick-quoted` token; instrument names are always
    // written that way in the reference table.
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      const size_t end = line.find('`', pos + 1);
      if (end == std::string::npos) break;
      documented.insert(line.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    }
  }

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const SnapshotEntry& entry : snapshot.entries) {
    if (entry.name.rfind("test.", 0) == 0) continue;  // test-local names
    EXPECT_TRUE(documented.count(entry.name) == 1)
        << "instrument `" << entry.name
        << "` is emitted but not documented in docs/metrics.md";
  }
}

}  // namespace
}  // namespace benu
