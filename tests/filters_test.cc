// Tests for the degree filter (§IV-A) and the property-graph (labeled)
// extension.

#include "plan/filters.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "common/rng.h"
#include "core/executor.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

TEST(DegreeFloorsTest, FloorsAreTightOnAStar) {
  // Relabeled star: leaves get ids 0..k-1 (degree 1), hub id k (degree k).
  Graph star = MakeStar(5).RelabelByDegree();
  auto floors = ComputeDegreeFloors(star, star.MaxDegree());
  EXPECT_EQ(floors[0], 0u);
  EXPECT_EQ(floors[1], 0u);
  EXPECT_EQ(floors[2], 5u);  // first vertex with degree >= 2 is the hub
  EXPECT_EQ(floors[5], 5u);
}

TEST(DegreeFloorsTest, UnreachableDegreeMapsPastTheEnd) {
  Graph cycle = MakeCycle(4).RelabelByDegree();
  auto floors = ComputeDegreeFloors(cycle, 7);
  EXPECT_EQ(floors[2], 0u);
  for (size_t d = 3; d <= 7; ++d) {
    EXPECT_EQ(floors[d], cycle.NumVertices());
  }
}

TEST(DegreeFloorsTest, MonotoneNonDecreasing) {
  Graph g = std::move(GenerateBarabasiAlbert(200, 4, 5)).value()
                .RelabelByDegree();
  auto floors = ComputeDegreeFloors(g, g.MaxDegree());
  for (size_t d = 1; d < floors.size(); ++d) {
    EXPECT_GE(floors[d], floors[d - 1]);
  }
}

TEST(DegreeFilterTest, AnnotatesIniAndEnuWithPatternDegrees) {
  Graph q4 = std::move(GetPattern("q4")).value();
  PlanSearchOptions options;
  options.apply_degree_filter = true;
  auto plan = GenerateBestPlan(q4, DataGraphStats{1e5, 1e6}, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->plan.UsesDegreeFilters());
  for (const Instruction& ins : plan->plan.instructions) {
    if (ins.type == InstrType::kInit || ins.type == InstrType::kEnumerate) {
      EXPECT_EQ(ins.min_degree,
                q4.Degree(static_cast<VertexId>(ins.target.index)));
    } else {
      EXPECT_EQ(ins.min_degree, 0u);
    }
  }
}

TEST(DegreeFilterTest, ExecutorRequiresFloorTable) {
  Graph triangle = MakeClique(3);
  PlanSearchOptions options;
  options.apply_degree_filter = true;
  auto plan = GenerateBestPlan(triangle, DataGraphStats{1e3, 1e4}, options);
  ASSERT_TRUE(plan.ok());
  Graph data = MakeClique(4);
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan->plan, &provider, &tcache);
  EXPECT_FALSE(executor.ok());
}

TEST(DegreeFilterTest, CountsAreUnchangedAcrossPatterns) {
  auto raw = GenerateBarabasiAlbert(150, 4, 71);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  for (const std::string name : {"triangle", "q1", "q4", "q5", "q7"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto expected = BruteForceCountSubgraphs(data, p);
    ASSERT_TRUE(expected.ok());
    PlanSearchOptions options;
    options.apply_degree_filter = true;
    auto plan =
        GenerateBestPlan(p, DataGraphStats::FromGraph(data), options);
    ASSERT_TRUE(plan.ok()) << name;
    ClusterConfig config;
    config.num_workers = 2;
    config.threads_per_worker = 2;
    ClusterSimulator cluster(data, config);
    auto result = cluster.Run(plan->plan);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result->total_matches, *expected) << name;
  }
}

TEST(DegreeFilterTest, PrunesWorkOnSkewedGraphs) {
  // Matching K4 requires degree >= 3 everywhere. Build a power-law core
  // plus pendant (degree-1) vertices: the filter must skip the pendants'
  // local search tasks outright, cutting adjacency requests.
  auto core = GenerateBarabasiAlbert(300, 3, 99);
  ASSERT_TRUE(core.ok());
  auto edges = core->Edges();
  for (VertexId i = 0; i < 200; ++i) {
    edges.emplace_back(static_cast<VertexId>(300 + i), i % 300);
  }
  auto raw = Graph::FromEdges(500, edges);
  ASSERT_TRUE(raw.ok());
  Graph data = raw->RelabelByDegree();
  Graph k4 = MakeClique(4);
  auto unfiltered = GenerateBestPlan(k4, DataGraphStats::FromGraph(data));
  PlanSearchOptions filter_options;
  filter_options.apply_degree_filter = true;
  auto filtered =
      GenerateBestPlan(k4, DataGraphStats::FromGraph(data), filter_options);
  ASSERT_TRUE(unfiltered.ok());
  ASSERT_TRUE(filtered.ok());
  ClusterConfig config;
  config.num_workers = 1;
  config.threads_per_worker = 1;
  ClusterSimulator cluster(data, config);
  auto a = cluster.Run(unfiltered->plan);
  auto b = cluster.Run(filtered->plan);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_matches, b->total_matches);
  EXPECT_LT(b->adjacency_requests, a->adjacency_requests);
}

// ---------------------------------------------------------------------------
// Labeled (property-graph) extension.
// ---------------------------------------------------------------------------

std::vector<int> RandomLabels(size_t n, int alphabet, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> labels(n);
  for (auto& l : labels) l = static_cast<int>(rng.NextBounded(alphabet));
  return labels;
}

TEST(LabeledTest, LabeledSymmetryBreakingRespectsLabels) {
  // Triangle with labels {0, 0, 1}: only the automorphism swapping the
  // two 0-labeled vertices survives, so exactly one constraint is
  // emitted.
  Graph triangle = MakeClique(3);
  auto cs = ComputeLabeledSymmetryBreakingConstraints(triangle, {0, 0, 1});
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].first, 0u);
  EXPECT_EQ(cs[0].second, 1u);
  // All-distinct labels: no symmetry at all.
  EXPECT_TRUE(
      ComputeLabeledSymmetryBreakingConstraints(triangle, {0, 1, 2}).empty());
}

TEST(LabeledTest, EndToEndMatchesLabeledOracle) {
  auto raw = GenerateBarabasiAlbert(120, 4, 41);
  ASSERT_TRUE(raw.ok());
  const Graph& data = *raw;
  std::vector<int> data_labels = RandomLabels(data.NumVertices(), 3, 7);
  for (const std::string name : {"triangle", "square", "q1", "q3"}) {
    Graph p = std::move(GetPattern(name)).value();
    std::vector<int> pattern_labels =
        RandomLabels(p.NumVertices(), 3, 1000 + name.size());
    auto oracle = BruteForceCountLabeledSubgraphs(data, data_labels, p,
                                                  pattern_labels);
    ASSERT_TRUE(oracle.ok());
    BenuOptions options;
    options.cluster.num_workers = 2;
    options.cluster.threads_per_worker = 2;
    options.plan.pattern_labels = pattern_labels;
    options.data_labels = data_labels;
    auto result = RunBenu(data, p, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->run.total_matches, *oracle) << name;
  }
}

TEST(LabeledTest, UniformLabelsMatchUnlabeledCounts) {
  auto raw = GenerateErdosRenyi(60, 240, 21);
  ASSERT_TRUE(raw.ok());
  Graph p = std::move(GetPattern("diamond")).value();
  auto unlabeled = BruteForceCountSubgraphs(*raw, p);
  ASSERT_TRUE(unlabeled.ok());
  BenuOptions options;
  options.cluster.num_workers = 1;
  options.cluster.threads_per_worker = 1;
  options.plan.pattern_labels = {5, 5, 5, 5};
  options.data_labels.assign(raw->NumVertices(), 5);
  auto result = RunBenu(*raw, p, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->run.total_matches, *unlabeled);
}

TEST(LabeledTest, MissingLabelsRejected) {
  Graph p = MakeClique(3);
  Graph data = MakeClique(5);
  BenuOptions options;
  options.plan.pattern_labels = {0, 0, 0};
  // No data labels supplied.
  EXPECT_FALSE(RunBenu(data, p, options).ok());
}

TEST(LabeledTest, VcbcWithLabelsRejected) {
  Graph p = MakeClique(3);
  PlanSearchOptions options;
  options.pattern_labels = {0, 0, 0};
  options.apply_vcbc = true;
  EXPECT_FALSE(GenerateBestPlan(p, DataGraphStats{1e3, 1e4}, options).ok());
}

TEST(LabeledTest, ImpossibleLabelYieldsZero) {
  auto raw = GenerateErdosRenyi(40, 120, 31);
  ASSERT_TRUE(raw.ok());
  Graph p = MakeClique(3);
  BenuOptions options;
  options.cluster.num_workers = 1;
  options.plan.pattern_labels = {9, 9, 9};  // label absent from the data
  options.data_labels.assign(raw->NumVertices(), 1);
  auto result = RunBenu(*raw, p, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->run.total_matches, 0u);
}

}  // namespace
}  // namespace benu
