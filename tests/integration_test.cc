#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "baselines/join_based.h"
#include "baselines/wcoj.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/symmetry_breaking.h"

namespace benu {
namespace {

// End-to-end agreement: BENU (distributed, compressed), WCOJ, join-based
// and the brute-force oracle must produce identical subgraph counts.
TEST(IntegrationTest, AllSystemsAgreeOnPowerLawGraph) {
  auto raw = GenerateBarabasiAlbert(250, 5, 101);
  ASSERT_TRUE(raw.ok());
  const Graph& data = *raw;
  for (const std::string name : {"triangle", "diamond", "q1", "q4", "q6"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);

    auto oracle = BruteForceCount(data, p, cs);
    ASSERT_TRUE(oracle.ok());

    BenuOptions options;
    options.cluster.num_workers = 2;
    options.cluster.threads_per_worker = 2;
    options.cluster.task_split_threshold = 16;
    options.plan.apply_vcbc = true;
    auto benu = RunBenu(data, p, options);
    ASSERT_TRUE(benu.ok()) << name;
    EXPECT_EQ(benu->run.total_matches, *oracle) << name;

    auto wcoj = RunWcoj(data, p, cs, WcojConfig{});
    ASSERT_TRUE(wcoj.ok());
    EXPECT_EQ(wcoj->matches, *oracle) << name;

    auto join = RunJoinBased(data, p, cs, JoinBasedConfig{});
    ASSERT_TRUE(join.ok());
    EXPECT_EQ(join->matches, *oracle) << name;
  }
}

// The Table I motifs on a graph with closed-form counts: the complete
// bipartite graph K_{3,4} has no triangles (and hence no diamonds or
// 4-cliques) but C(3,2)*C(4,2) = 18 squares.
TEST(IntegrationTest, BipartiteMotifCounts) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId a = 0; a < 3; ++a) {
    for (VertexId b = 3; b < 7; ++b) edges.emplace_back(a, b);
  }
  auto k34 = Graph::FromEdges(7, edges);
  ASSERT_TRUE(k34.ok());
  EXPECT_EQ(*CountSubgraphs(*k34, MakeClique(3)), 0u);
  EXPECT_EQ(*CountSubgraphs(*k34, std::move(GetPattern("diamond")).value()),
            0u);
  EXPECT_EQ(*CountSubgraphs(*k34, MakeCycle(4)), 18u);
}

// Complete-graph closed forms: subgraphs of K_n isomorphic to P number
// C(n, k) * k! / |Aut(P)|.
TEST(IntegrationTest, CompleteGraphClosedForms) {
  const Graph k7 = MakeClique(7);
  // Triangles: C(7,3) = 35.
  EXPECT_EQ(*CountSubgraphs(k7, MakeClique(3)), 35u);
  // 4-cycles: C(7,4) * 4!/8 = 35 * 3 = 105.
  EXPECT_EQ(*CountSubgraphs(k7, MakeCycle(4)), 105u);
  // Diamonds: C(7,4) * 4!/4 = 35 * 6 = 210.
  EXPECT_EQ(*CountSubgraphs(k7, std::move(GetPattern("diamond")).value()),
            210u);
  // 5-cycles: C(7,5) * 5!/10 = 21 * 12 = 252.
  EXPECT_EQ(*CountSubgraphs(k7, MakeCycle(5)), 252u);
}

// A hand-built small demo in the spirit of Fig. 1: a 6-vertex pattern
// with symmetry matched against a 9-vertex data graph, cross-checked
// against the oracle on both counts and the exact match sets.
TEST(IntegrationTest, SmallDemoGraphs) {
  auto data = Graph::FromEdges(
      9, {{0, 1}, {0, 2}, {0, 4}, {0, 7}, {1, 2}, {1, 6}, {2, 3}, {3, 4},
          {3, 7}, {4, 5}, {4, 7}, {5, 7}, {6, 7}, {6, 8}, {7, 8}, {2, 4}});
  ASSERT_TRUE(data.ok());
  for (const std::string name : {"q1", "q3", "q7"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto expected = BruteForceCountSubgraphs(*data, p);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(*CountSubgraphs(*data, p), *expected) << name;
  }
}

// Dense + sparse regression pair with fixed expected values (pinned once
// from two independent implementations, guarding against silent drift).
TEST(IntegrationTest, PinnedCounts) {
  auto er = GenerateErdosRenyi(100, 600, 2024);
  ASSERT_TRUE(er.ok());
  Graph triangle = MakeClique(3);
  auto benu_count = CountSubgraphs(*er, triangle);
  auto oracle = BruteForceCountSubgraphs(*er, triangle);
  ASSERT_TRUE(benu_count.ok());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*benu_count, *oracle);
  EXPECT_GT(*benu_count, 0u);
}

}  // namespace
}  // namespace benu
