// Unit and concurrency coverage of the memory governor and the region
// allocator behind the hybrid BFS/DFS execution mode: lease arithmetic
// (guard band, conservative split, denial near the cap), headroom-scaled
// prefetch knobs, region pin/unpin bookkeeping with stack-disciplined
// reclamation, and a multi-threaded hammer that TSan watches (the
// governor is called from every execution thread and under DB-cache
// shard locks).

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/memory_governor.h"
#include "core/region_buffer.h"
#include "gtest/gtest.h"

namespace benu {
namespace {

constexpr size_t kId = sizeof(VertexId);

TEST(MemoryGovernorTest, NoBudgetGrantsEverythingAndWidensFully) {
  MemoryGovernor governor(/*memory_budget_bytes=*/0,
                          /*base_prefetch_budget=*/64,
                          /*base_prefetch_batch_size=*/16);
  EXPECT_EQ(governor.GrantFrontierLease(1u << 20), 1u << 20);
  // Headroom is pegged at 1.0: both knobs sit at their widening caps.
  EXPECT_EQ(governor.PrefetchBudget(),
            64 * MemoryGovernor::kMaxPrefetchWidening);
  EXPECT_EQ(governor.PrefetchBatchSize(),
            16 * MemoryGovernor::kMaxBatchWidening);
  EXPECT_EQ(governor.stats().lease_grants, 1u);
  EXPECT_EQ(governor.stats().lease_denials, 0u);
}

TEST(MemoryGovernorTest, LeaseTakesAQuarterOfUsableHeadroom) {
  const size_t budget = 1u << 20;
  MemoryGovernor governor(budget);
  // Guard band: 1/8 of the budget is never leased; a huge want gets a
  // quarter of what remains below the band.
  const uint64_t floor = budget - budget / 8;
  EXPECT_EQ(governor.GrantFrontierLease(16u << 20), floor / 4);
  // A modest want with ample headroom is granted in full.
  EXPECT_EQ(governor.GrantFrontierLease(4096), 4096u);
  // Wants below the minimum lease are granted exactly when affordable.
  EXPECT_EQ(governor.GrantFrontierLease(128), 128u);
  EXPECT_EQ(governor.stats().lease_grants, 3u);
}

TEST(MemoryGovernorTest, DeniesNearTheCapAndRecoversWhenPressureDrops) {
  const size_t budget = 1u << 20;
  MemoryGovernor governor(budget);
  // Pin right up to the guard band: usable headroom becomes ~0 and a
  // batch-sized want must be denied (the executor spills to DFS).
  const int64_t almost_all = static_cast<int64_t>(budget - budget / 8);
  governor.AddCacheResident(almost_all);
  EXPECT_EQ(governor.GrantFrontierLease(64 * kId), 0u);
  EXPECT_EQ(governor.stats().lease_denials, 1u);
  // Pressure drains (evictions): leases flow again.
  governor.AddCacheResident(-almost_all / 2);
  EXPECT_GT(governor.GrantFrontierLease(64 * kId), 0u);
  EXPECT_EQ(governor.stats().lease_grants, 1u);
}

TEST(MemoryGovernorTest, PrefetchKnobsScaleLinearlyWithHeadroom) {
  const size_t budget = 1u << 20;
  MemoryGovernor governor(budget, /*base_prefetch_budget=*/64,
                          /*base_prefetch_batch_size=*/16);
  // Idle budget: fully widened.
  EXPECT_EQ(governor.PrefetchBudget(), 64u * 8);
  EXPECT_EQ(governor.PrefetchBatchSize(), 16u * 4);
  // Half pinned: halfway between base and the cap.
  governor.AddFrontierPinned(budget / 2);
  EXPECT_EQ(governor.PrefetchBudget(), 64 + 64 * 7 / 2);
  EXPECT_EQ(governor.PrefetchBatchSize(), 16 + 16 * 3 / 2);
  // At (or past) the ceiling: degraded to the static PR-3 bases, never
  // below them.
  governor.AddFrontierPinned(budget);
  EXPECT_EQ(governor.PrefetchBudget(), 64u);
  EXPECT_EQ(governor.PrefetchBatchSize(), 16u);
}

TEST(MemoryGovernorTest, DisabledPrefetchStaysDisabled) {
  MemoryGovernor governor(1u << 20, /*base_prefetch_budget=*/0);
  EXPECT_EQ(governor.PrefetchBudget(), 0u);
}

TEST(MemoryGovernorTest, HighWaterTracksThePeakNotTheCurrent) {
  MemoryGovernor governor(1u << 20);
  governor.AddCacheResident(1000);
  governor.AddFrontierPinned(500);
  EXPECT_EQ(governor.high_water_bytes(), 1500u);
  governor.AddFrontierPinned(-500);
  governor.AddCacheResident(-400);
  EXPECT_EQ(governor.pinned_bytes(), 600u);
  EXPECT_EQ(governor.high_water_bytes(), 1500u);
  const MemoryGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.cache_bytes, 600u);
  EXPECT_EQ(stats.frontier_bytes, 0u);
  EXPECT_EQ(stats.high_water_bytes, 1500u);
}

TEST(RegionBufferTest, PinsBlockCapacityAgainstTheGovernor) {
  MemoryGovernor governor(/*memory_budget_bytes=*/0);
  {
    RegionBuffer region;
    region.BindGovernor(&governor);
    region.AllocateArray(100);
    // The whole default block is pinned, not just the 100 entries.
    EXPECT_EQ(region.pinned_bytes(), RegionBuffer::kDefaultBlockIds * kId);
    EXPECT_EQ(governor.stats().frontier_bytes, region.pinned_bytes());
    // An oversized request gets a dedicated block of exactly its size.
    const size_t big = 3 * RegionBuffer::kDefaultBlockIds;
    region.AllocateArray(big);
    EXPECT_EQ(region.pinned_bytes(),
              (RegionBuffer::kDefaultBlockIds + big) * kId);
    EXPECT_EQ(governor.stats().frontier_bytes, region.pinned_bytes());
  }
  // Destruction releases every block back to the governor.
  EXPECT_EQ(governor.stats().frontier_bytes, 0u);
}

TEST(RegionBufferTest, PopToReclaimsInStackOrderAndKeepsOneSpare) {
  RegionBuffer region;
  const RegionBuffer::Mark outer = region.mark();
  VertexId* first = region.AllocateArray(8);
  first[0] = 7;
  const RegionBuffer::Mark inner = region.mark();
  region.AllocateArray(RegionBuffer::kDefaultBlockIds);  // forces block 2
  const size_t peak = region.pinned_bytes();
  EXPECT_EQ(peak, 2 * RegionBuffer::kDefaultBlockIds * kId);

  region.PopTo(inner);
  // The freed block is kept as the spare: still pinned, and the next
  // same-shaped batch reuses it without touching the allocator.
  EXPECT_EQ(region.pinned_bytes(), peak);
  EXPECT_EQ(first[0], 7u) << "PopTo must not disturb live allocations";
  region.AllocateArray(RegionBuffer::kDefaultBlockIds);
  EXPECT_EQ(region.pinned_bytes(), peak) << "spare block was not reused";

  region.PopTo(outer);
  region.Reset();
  EXPECT_EQ(region.pinned_bytes(), 0u);
}

TEST(RegionBufferTest, SequentialAllocationsShareABlock) {
  RegionBuffer region;
  VertexId* a = region.AllocateArray(100);
  VertexId* b = region.AllocateArray(100);
  EXPECT_EQ(a + 100, b) << "bump allocation must be contiguous in-block";
  EXPECT_EQ(region.pinned_bytes(), RegionBuffer::kDefaultBlockIds * kId);
}

// TSan target: the governor is shared by every execution thread (lease
// requests, knob reads) and every DB-cache shard (resident deltas).
// Hammer all entry points concurrently; the balanced deltas must cancel
// exactly and every lease must be either 0 or positive (no torn reads).
TEST(MemoryGovernorTest, ConcurrentLeasesAndDeltasStayConsistent) {
  const size_t budget = 8u << 20;
  MemoryGovernor governor(budget, /*base_prefetch_budget=*/64,
                          /*base_prefetch_batch_size=*/16);
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<uint64_t> total_granted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&governor, &total_granted] {
      RegionBuffer region;
      region.BindGovernor(&governor);
      for (int i = 0; i < kIters; ++i) {
        governor.AddCacheResident(4096);
        const size_t grant = governor.GrantFrontierLease(64 * kId);
        if (grant != 0) {
          total_granted.fetch_add(grant, std::memory_order_relaxed);
          const RegionBuffer::Mark mark = region.mark();
          region.AllocateArray(grant / kId);
          region.PopTo(mark);
        }
        // Knob reads race with the deltas by design; they only need to
        // return something in [base, base × cap].
        const size_t pf = governor.PrefetchBudget();
        ASSERT_GE(pf, 64u);
        ASSERT_LE(pf, 64u * MemoryGovernor::kMaxPrefetchWidening);
        governor.AddCacheResident(-4096);
      }
      region.Reset();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(governor.stats().cache_bytes, 0u);
  EXPECT_EQ(governor.stats().frontier_bytes, 0u);
  EXPECT_EQ(governor.pinned_bytes(), 0u);
  EXPECT_GT(total_granted.load(), 0u);
  const MemoryGovernor::Stats stats = governor.stats();
  EXPECT_GE(stats.high_water_bytes, 4096u);
  EXPECT_EQ(stats.lease_grants + stats.lease_denials,
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace benu
