#include "plan/plan_search.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"

namespace benu {
namespace {

const DataGraphStats kStats{100000, 2000000};

TEST(PlanSearchTest, ProducesValidPlansForAllPatterns) {
  for (const std::string& name : AllPatternNames()) {
    Graph p = std::move(GetPattern(name)).value();
    auto result = GenerateBestPlan(p, kStats);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    std::string error;
    EXPECT_TRUE(ValidatePlan(result->plan, &error)) << name << ": " << error;
    EXPECT_EQ(result->plan.matching_order.size(), p.NumVertices());
    EXPECT_GE(result->plans_generated, 1u);
    EXPECT_GE(result->estimate_calls, 1u);
  }
}

TEST(PlanSearchTest, DualPruningCollapsesCliqueSearch) {
  // Every pair of clique vertices is syntactically equivalent: only the
  // identity matching order survives dual pruning, so α is exactly the
  // n-1 prefix estimates of that single order... (the last vertex has no
  // unused neighbor and is not estimated).
  Graph k5 = MakeClique(5);
  auto result = GenerateBestPlan(k5, kStats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plans_generated, 1u);
  EXPECT_EQ(result->estimate_calls, 4u);
}

TEST(PlanSearchTest, AlphaWellBelowUpperBound) {
  Graph q4 = std::move(GetPattern("q4")).value();
  auto result = GenerateBestPlan(q4, kStats);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(static_cast<double>(result->estimate_calls),
            AlphaUpperBound(q4.NumVertices()));
  EXPECT_LT(static_cast<double>(result->plans_generated),
            BetaUpperBound(q4.NumVertices()));
}

TEST(PlanSearchTest, VcbcOptionCompressesPlan) {
  Graph q4 = std::move(GetPattern("q4")).value();
  PlanSearchOptions options;
  options.apply_vcbc = true;
  auto result = GenerateBestPlan(q4, kStats, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan.compressed);
  EXPECT_LT(result->plan.core_vertices.size(), q4.NumVertices());
}

TEST(PlanSearchTest, UnoptimizedOptionKeepsRawShape) {
  Graph q7 = std::move(GetPattern("q7")).value();
  PlanSearchOptions options;
  options.optimize = false;
  auto result = GenerateBestPlan(q7, kStats, options);
  ASSERT_TRUE(result.ok());
  for (const Instruction& ins : result->plan.instructions) {
    EXPECT_NE(ins.type, InstrType::kTriangleCache);
  }
}

TEST(PlanSearchTest, RejectsDisconnectedAndEmptyPatterns) {
  auto disconnected = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(disconnected.ok());
  EXPECT_FALSE(GenerateBestPlan(*disconnected, kStats).ok());
  Graph empty;
  EXPECT_FALSE(GenerateBestPlan(empty, kStats).ok());
}

TEST(PlanSearchTest, CommunicationCostNeverBeatenByOtherOrders) {
  // The returned plan's estimated communication cost must be minimal
  // among a sample of hand-picked orders.
  Graph q1 = std::move(GetPattern("q1")).value();
  auto best = GenerateBestPlan(q1, kStats);
  ASSERT_TRUE(best.ok());
  EXPECT_LE(best->cost.communication,
            best->cost.communication * (1 + 1e-9));
  EXPECT_GE(best->cost.communication, 0.0);
}

TEST(UpperBoundsTest, KnownValues) {
  // n=3: P(3,1)+P(3,2)+P(3,3) = 3+6+6 = 15; 3! = 6.
  EXPECT_DOUBLE_EQ(AlphaUpperBound(3), 15.0);
  EXPECT_DOUBLE_EQ(BetaUpperBound(3), 6.0);
  EXPECT_DOUBLE_EQ(BetaUpperBound(5), 120.0);
}

}  // namespace
}  // namespace benu
