// Rendering and validation tests for the execution-plan IR.

#include "plan/instruction.h"

#include <gtest/gtest.h>

#include "graph/patterns.h"

namespace benu {
namespace {

TEST(InstructionToStringTest, InitAndDbq) {
  Instruction ini;
  ini.type = InstrType::kInit;
  ini.target = {VarKind::kF, 0};
  EXPECT_EQ(ini.ToString(), "f1 := Init(start)");

  Instruction dbq;
  dbq.type = InstrType::kDbQuery;
  dbq.target = {VarKind::kA, 2};
  dbq.operands = {{VarKind::kF, 2}};
  EXPECT_EQ(dbq.ToString(), "A3 := GetAdj(f3)");
}

TEST(InstructionToStringTest, TriangleCache) {
  Instruction trc;
  trc.type = InstrType::kTriangleCache;
  trc.target = {VarKind::kT, 6};
  trc.operands = {{VarKind::kA, 0}, {VarKind::kA, 2}};
  EXPECT_EQ(trc.ToString(), "T7 := TCache(A1, A3)");
}

TEST(InstructionToStringTest, ReportAndAllVertices) {
  Instruction res;
  res.type = InstrType::kReport;
  res.operands = {{VarKind::kF, 0}, {VarKind::kC, 1}};
  EXPECT_EQ(res.ToString(), "f := ReportMatch(f1, C2)");

  Instruction with_all;
  with_all.type = InstrType::kIntersect;
  with_all.target = {VarKind::kC, 1};
  with_all.operands = {{VarKind::kAllVertices, 0}};
  with_all.filters = {{FilterKind::kNotEqual, 0}};
  EXPECT_EQ(with_all.ToString(), "C2 := Intersect(V(G)) | !=f1");
}

TEST(InstructionToStringTest, DegreeAndLabelAnnotations) {
  Instruction enu;
  enu.type = InstrType::kEnumerate;
  enu.target = {VarKind::kF, 1};
  enu.operands = {{VarKind::kC, 1}};
  enu.min_degree = 3;
  enu.required_label = 7;
  EXPECT_EQ(enu.ToString(), "f2 := Foreach(C2) | deg>=3 | label=7");
}

TEST(ValidatePlanTest, RejectsEmptyPlan) {
  ExecutionPlan plan;
  std::string error;
  EXPECT_FALSE(ValidatePlan(plan, &error));
}

TEST(ValidatePlanTest, RejectsMissingReport) {
  ExecutionPlan plan;
  plan.pattern = MakeClique(2);
  plan.matching_order = {0, 1};
  Instruction ini;
  ini.type = InstrType::kInit;
  ini.target = {VarKind::kF, 0};
  plan.instructions = {ini};
  std::string error;
  EXPECT_FALSE(ValidatePlan(plan, &error));
  EXPECT_NE(error.find("RES"), std::string::npos);
}

TEST(ValidatePlanTest, RejectsInstructionAfterReport) {
  ExecutionPlan plan;
  plan.pattern = MakeClique(1);
  plan.matching_order = {0};
  Instruction ini;
  ini.type = InstrType::kInit;
  ini.target = {VarKind::kF, 0};
  Instruction res;
  res.type = InstrType::kReport;
  res.operands = {{VarKind::kF, 0}};
  plan.instructions = {ini, res, ini};
  std::string error;
  EXPECT_FALSE(ValidatePlan(plan, &error));
}

TEST(ValidatePlanTest, RejectsRedefinedVariable) {
  ExecutionPlan plan;
  plan.pattern = MakeClique(1);
  plan.matching_order = {0};
  Instruction ini;
  ini.type = InstrType::kInit;
  ini.target = {VarKind::kF, 0};
  Instruction res;
  res.type = InstrType::kReport;
  res.operands = {{VarKind::kF, 0}};
  plan.instructions = {ini, ini, res};
  std::string error;
  EXPECT_FALSE(ValidatePlan(plan, &error));
  EXPECT_NE(error.find("redefined"), std::string::npos);
}

TEST(ValidatePlanTest, RejectsFilterOnUnmappedVertex) {
  ExecutionPlan plan;
  plan.pattern = MakeClique(2);
  plan.matching_order = {0, 1};
  Instruction ini;
  ini.type = InstrType::kInit;
  ini.target = {VarKind::kF, 0};
  Instruction dbq;
  dbq.type = InstrType::kDbQuery;
  dbq.target = {VarKind::kA, 0};
  dbq.operands = {{VarKind::kF, 0}};
  Instruction refine;
  refine.type = InstrType::kIntersect;
  refine.target = {VarKind::kC, 1};
  refine.operands = {{VarKind::kA, 0}};
  refine.filters = {{FilterKind::kGreater, 1}};  // f2 not mapped yet
  plan.instructions = {ini, dbq, refine};
  std::string error;
  EXPECT_FALSE(ValidatePlan(plan, &error));
}

TEST(VarRefTest, OrderingAndEquality) {
  VarRef a{VarKind::kA, 1};
  VarRef b{VarKind::kA, 2};
  VarRef c{VarKind::kT, 1};
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);  // kA sorts before kT
}

TEST(ExecutionPlanTest, UsesDegreeFiltersFlag) {
  ExecutionPlan plan;
  Instruction ini;
  ini.type = InstrType::kInit;
  ini.target = {VarKind::kF, 0};
  plan.instructions = {ini};
  EXPECT_FALSE(plan.UsesDegreeFilters());
  plan.instructions[0].min_degree = 2;
  EXPECT_TRUE(plan.UsesDegreeFilters());
  EXPECT_FALSE(plan.UsesLabelFilters());
  plan.pattern_labels = {1};
  EXPECT_TRUE(plan.UsesLabelFilters());
}

}  // namespace
}  // namespace benu
