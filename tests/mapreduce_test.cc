#include "distributed/mapreduce.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "baselines/bruteforce.h"
#include "distributed/benu_mapreduce.h"
#include "graph/generators.h"
#include "graph/patterns.h"

namespace benu {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobStats;
using mapreduce::KeyGroup;
using mapreduce::Record;
using mapreduce::RunJob;

TEST(MapReduceTest, WordCountStyleAggregation) {
  // Inputs: single-value records; map emits (value, 1); reduce sums.
  std::vector<Record> inputs = {{3}, {5}, {3}, {3}, {7}, {5}};
  auto map = [](const Record& in, mapreduce::Emitter* emitter) {
    emitter->Emit(in[0], {1});
  };
  auto reduce = [](int, const KeyGroup& group, std::vector<Record>* out) {
    uint32_t total = 0;
    for (const Record& r : group.records) total += r[0];
    out->push_back({static_cast<uint32_t>(group.key), total});
  };
  JobStats stats;
  auto output = RunJob(inputs, map, reduce, JobConfig{3}, &stats);
  ASSERT_TRUE(output.ok());
  std::map<uint32_t, uint32_t> counts;
  for (const Record& r : *output) counts[r[0]] = r[1];
  EXPECT_EQ(counts[3], 3u);
  EXPECT_EQ(counts[5], 2u);
  EXPECT_EQ(counts[7], 1u);
  EXPECT_EQ(stats.map_input_records, 6u);
  EXPECT_EQ(stats.shuffled_records, 6u);
  EXPECT_EQ(stats.reduce_output_records, 3u);
  EXPECT_GT(stats.shuffled_bytes, 0u);
}

TEST(MapReduceTest, KeysStayWithinOneReducer) {
  // Every record of one key must reach exactly one group.
  std::vector<Record> inputs;
  for (uint32_t i = 0; i < 100; ++i) inputs.push_back({i % 10});
  auto map = [](const Record& in, mapreduce::Emitter* emitter) {
    emitter->Emit(in[0], in);
  };
  std::map<uint64_t, int> groups_seen;
  auto reduce = [&groups_seen](int, const KeyGroup& group,
                               std::vector<Record>*) {
    ++groups_seen[group.key];
    EXPECT_EQ(group.records.size(), 10u);
  };
  auto output = RunJob(inputs, map, reduce, JobConfig{4}, nullptr);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(groups_seen.size(), 10u);
  for (const auto& [key, times] : groups_seen) EXPECT_EQ(times, 1) << key;
}

TEST(MapReduceTest, ShuffleBudgetTriggersFailure) {
  std::vector<Record> inputs(100, Record{1});
  auto map = [](const Record&, mapreduce::Emitter* emitter) {
    for (uint32_t i = 0; i < 10; ++i) emitter->Emit(i, {i});
  };
  auto reduce = [](int, const KeyGroup&, std::vector<Record>*) {};
  JobConfig config;
  config.num_reducers = 2;
  config.max_shuffle_records = 50;
  auto output = RunJob(inputs, map, reduce, config, nullptr);
  EXPECT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kResourceExhausted);
}

TEST(MapReduceTest, RejectsZeroReducers) {
  auto map = [](const Record&, mapreduce::Emitter*) {};
  auto reduce = [](int, const KeyGroup&, std::vector<Record>*) {};
  EXPECT_FALSE(RunJob({}, map, reduce, JobConfig{0}, nullptr).ok());
}

TEST(BenuOnMapReduceTest, MatchesOracleAcrossPatterns) {
  auto data = GenerateBarabasiAlbert(150, 4, 88);
  ASSERT_TRUE(data.ok());
  for (const std::string name : {"triangle", "q1", "q4", "q7"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto oracle = BruteForceCountSubgraphs(*data, p);
    ASSERT_TRUE(oracle.ok());
    auto result = RunBenuOnMapReduce(*data, p, /*num_reducers=*/4,
                                     /*cache_bytes_per_reducer=*/1 << 20,
                                     /*task_split_threshold=*/10);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result->total_matches, *oracle) << name;
    // BENU's only shuffle is the task list: a few records per vertex.
    EXPECT_GE(result->job.shuffled_records, data->NumVertices());
    EXPECT_LT(result->job.shuffled_records, 4 * data->NumVertices());
  }
}

TEST(BenuOnMapReduceTest, ReducerCountInvariant) {
  auto data = GenerateErdosRenyi(80, 320, 14);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("diamond")).value();
  Count reference = 0;
  for (int reducers : {1, 3, 8}) {
    auto result = RunBenuOnMapReduce(*data, p, reducers, 1 << 20);
    ASSERT_TRUE(result.ok());
    if (reducers == 1) {
      reference = result->total_matches;
    } else {
      EXPECT_EQ(result->total_matches, reference) << reducers;
    }
  }
}

}  // namespace
}  // namespace benu
