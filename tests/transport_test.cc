#include "storage/transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/wire.h"
#include "graph/adj_codec.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/kv_server.h"
#include "storage/kv_store.h"
#include "storage/kv_tcp_server.h"
#include "storage/socket_io.h"
#include "storage/tcp_transport.h"

namespace benu {
namespace {

// --- wire protocol ----------------------------------------------------

TEST(WireTest, HeaderMatchesModeledReplyOverhead) {
  // The whole byte-equivalence story of the transport layer hangs on
  // this: a real adjacency reply frame weighs exactly what the simulator
  // has always charged per reply.
  EXPECT_EQ(wire::kHeaderBytes, DistributedKvStore::kReplyOverheadBytes);
  EXPECT_EQ(wire::AdjacencyReplyBytes(7),
            DistributedKvStore::ReplyBytes(7));
}

TEST(WireTest, AdjacencyReplyRoundTrips) {
  VertexSet adjacency{3, 5, 8, 1000000};
  std::vector<uint8_t> buffer;
  wire::AppendAdjacencyReply(42, VertexSetView(adjacency), &buffer);
  EXPECT_EQ(buffer.size(), wire::AdjacencyReplyBytes(adjacency.size()));

  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->frame_bytes, buffer.size());
  VertexId key = kInvalidVertex;
  VertexSet decoded;
  auto st = wire::DecodeAdjacencyReply(*frame, &key, &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(key, 42u);
  EXPECT_EQ(decoded, adjacency);
}

TEST(WireTest, RequestsRoundTrip) {
  std::vector<uint8_t> buffer;
  wire::AppendGetRequest(17, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto key = wire::DecodeGetRequest(*frame);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, 17u);

  buffer.clear();
  const VertexId keys[] = {4, 9, 2};
  wire::AppendBatchGetRequest(keys, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto decoded = wire::DecodeBatchGetRequest(*frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (std::vector<VertexId>{4, 9, 2}));
}

TEST(WireTest, HelloAndStatsRoundTrip) {
  std::vector<uint8_t> buffer;
  wire::HelloInfo info{100, 8, 2, 1};
  wire::AppendHelloReply(info, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->num_vertices, 100u);
  EXPECT_EQ(hello->num_partitions, 8u);
  EXPECT_EQ(hello->num_servers, 2u);
  EXPECT_EQ(hello->server_index, 1u);

  buffer.clear();
  wire::AppendStatsReply({7, 11, 13}, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto stats = wire::DecodeStatsReply(*frame);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->requests, 7u);
  EXPECT_EQ(stats->keys_served, 11u);
  EXPECT_EQ(stats->bytes_sent, 13u);
}

TEST(WireTest, ErrorFrameCarriesStatus) {
  std::vector<uint8_t> buffer;
  wire::AppendError(StatusCode::kOutOfRange, "key 99 not here", &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  const Status st = wire::DecodeError(*frame);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(st.message(), "key 99 not here");
  // Typed decoders convert an unexpected kError frame into its Status.
  VertexId key;
  VertexSet out;
  EXPECT_EQ(wire::DecodeAdjacencyReply(*frame, &key, &out).code(),
            StatusCode::kOutOfRange);
}

TEST(WireTest, RejectsMalformedFrames) {
  std::vector<uint8_t> buffer;
  wire::AppendGetRequest(1, &buffer);

  std::vector<uint8_t> bad_magic = buffer;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(wire::DecodeFrame(bad_magic).ok());

  std::vector<uint8_t> bad_version = buffer;
  bad_version[4] = wire::kVersion + 1;
  EXPECT_FALSE(wire::DecodeFrame(bad_version).ok());

  std::vector<uint8_t> short_buffer(buffer.begin(), buffer.begin() + 8);
  EXPECT_FALSE(wire::DecodeFrame(short_buffer).ok());

  VertexSet adjacency{1, 2, 3};
  std::vector<uint8_t> truncated;
  wire::AppendAdjacencyReply(0, VertexSetView(adjacency), &truncated);
  truncated.resize(truncated.size() - 2);  // payload shorter than header says
  EXPECT_FALSE(wire::DecodeFrame(truncated).ok());
}

TEST(WireTest, EncodedAdjacencyReplyRoundTrips) {
  VertexSet adjacency{3, 5, 8, 1000000};
  codec::EncodedSet encoded;
  codec::Encode(VertexSetView(adjacency), &encoded);
  std::vector<uint8_t> buffer;
  wire::AppendEncodedAdjacencyReply(42, encoded, &buffer);
  EXPECT_EQ(buffer.size(),
            wire::EncodedAdjacencyReplyBytes(encoded.bytes.size()));

  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(wire::FrameIsEncoded(*frame));
  VertexId key = kInvalidVertex;
  codec::EncodedSet back;
  auto st = wire::DecodeEncodedAdjacencyReply(*frame, &key, &back);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(key, 42u);
  VertexSet decoded;
  codec::DecodeAll(back, &decoded);
  EXPECT_EQ(decoded, adjacency);

  // The untyped decoder materializes encoded frames transparently, so a
  // client that never asks for encoding still survives receiving one.
  VertexSet via_raw_path;
  st = wire::DecodeAdjacencyReply(*frame, &key, &via_raw_path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(via_raw_path, adjacency);
}

// --- mixed-version interop --------------------------------------------

TEST(WireTest, RawClientAgainstEncodingServerGetsRawReplies) {
  // A legacy client never sets the encoded-request flag; an
  // encoding-capable server must answer it with plain raw frames.
  Graph g = MakeCycle(8);
  KvPartitionServer server(&g, 1, 1, 0, 0, 1, /*support_encoding=*/true);
  std::vector<uint8_t> request, reply;
  wire::AppendGetRequest(3, &request, /*want_encoded=*/false);
  server.HandleFrame(request, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(wire::FrameIsEncoded(*frame));
  VertexId key;
  VertexSet out;
  ASSERT_TRUE(wire::DecodeAdjacencyReply(*frame, &key, &out).ok());
  EXPECT_EQ(out, (VertexSet{2, 4}));
}

TEST(WireTest, EncodingClientAgainstRawServerDegradesToRaw) {
  // The reverse direction: a client requesting encoded replies from a
  // server built without encoding support gets raw frames and must
  // dispatch on the reply's own flag (which transports do).
  Graph g = MakeCycle(8);
  KvPartitionServer server(&g, 1, 1, 0, 0, 1, /*support_encoding=*/false);
  EXPECT_FALSE(server.supports_encoding());
  std::vector<uint8_t> request, reply;
  wire::AppendGetRequest(3, &request, /*want_encoded=*/true);
  server.HandleFrame(request, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(wire::FrameIsEncoded(*frame));
  VertexId key;
  VertexSet out;
  ASSERT_TRUE(wire::DecodeAdjacencyReply(*frame, &key, &out).ok());
  EXPECT_EQ(out, (VertexSet{2, 4}));
}

TEST(WireTest, VersionOneFramesStillDecode) {
  // Version-2 peers must keep decoding version-1 frames (kMinVersion):
  // a request stamped with the old version is served normally.
  Graph g = MakeCycle(8);
  KvPartitionServer server(&g, 1, 1, 0);
  std::vector<uint8_t> request, reply;
  wire::AppendGetRequest(5, &request);
  request[4] = 1;  // downgrade the version byte to the legacy protocol
  auto frame = wire::DecodeFrame(request);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  server.HandleFrame(request, &reply);
  auto reply_frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(reply_frame.ok()) << reply_frame.status().ToString();
  VertexId key;
  VertexSet out;
  ASSERT_TRUE(wire::DecodeAdjacencyReply(*reply_frame, &key, &out).ok());
  EXPECT_EQ(key, 5u);
  EXPECT_EQ(out, (VertexSet{4, 6}));
}

// --- partition server -------------------------------------------------

TEST(KvPartitionServerTest, ServesOwnedKeysOnly) {
  Graph g = MakeCycle(8);
  // 4 partitions over 2 servers: server 0 owns partitions {0, 2}, i.e.
  // vertices {0, 2, 4, 6}.
  KvPartitionServer server(&g, /*num_partitions=*/4, /*num_servers=*/2,
                           /*server_index=*/0);
  EXPECT_TRUE(server.Serves(0));
  EXPECT_FALSE(server.Serves(1));
  EXPECT_TRUE(server.Serves(2));
  EXPECT_FALSE(server.Serves(99));  // out of the graph entirely

  std::vector<uint8_t> request, reply;
  wire::AppendGetRequest(4, &request);
  server.HandleFrame(request, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  VertexId key;
  VertexSet adjacency;
  ASSERT_TRUE(wire::DecodeAdjacencyReply(*frame, &key, &adjacency).ok());
  EXPECT_EQ(key, 4u);
  EXPECT_EQ(adjacency, (VertexSet{3, 5}));

  request.clear();
  reply.clear();
  wire::AppendGetRequest(1, &request);  // partition 1 — not this server
  server.HandleFrame(request, &reply);
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(wire::DecodeError(*frame).code(), StatusCode::kOutOfRange);
}

TEST(KvPartitionServerTest, BatchStopsAtFirstBadKey) {
  Graph g = MakeCycle(6);
  KvPartitionServer server(&g, /*num_partitions=*/2, /*num_servers=*/1,
                           /*server_index=*/0);
  const VertexId keys[] = {0, 99, 2};  // 99 is out of the graph
  std::vector<uint8_t> request, reply;
  wire::AppendBatchGetRequest(keys, &request);
  server.HandleFrame(request, &reply);

  auto first = wire::DecodeFrame(reply);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->header.type, wire::MessageType::kGetReply);
  std::span<const uint8_t> rest =
      std::span<const uint8_t>(reply).subspan(first->frame_bytes);
  auto second = wire::DecodeFrame(rest);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->header.type, wire::MessageType::kError);
  // The error replaces the remaining replies.
  EXPECT_EQ(first->frame_bytes + second->frame_bytes, reply.size());
}

TEST(KvPartitionServerTest, SurvivesGarbageInput) {
  Graph g = MakeCycle(4);
  KvPartitionServer server(&g, 1, 1, 0);
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  std::vector<uint8_t> reply;
  server.HandleFrame(garbage, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kError);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().keys_served, 0u);
}

// --- backend equivalence ----------------------------------------------

void ExpectSameBehavior(Transport& a, Transport& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  // Single fetches.
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto fa = a.Fetch(v);
    auto fb = b.Fetch(v);
    ASSERT_TRUE(fa.ok()) << fa.status().ToString();
    ASSERT_TRUE(fb.ok()) << fb.status().ToString();
    EXPECT_EQ(*fa->Materialize(), *fb->Materialize())
        << "adjacency of vertex " << v;
  }
  // A batch spanning several partitions, unsorted.
  std::vector<VertexId> keys;
  for (VertexId v = 0; v < a.num_vertices(); v += 2) keys.push_back(v);
  std::reverse(keys.begin(), keys.end());
  auto ba = a.FetchBatch(keys);
  auto bb = b.FetchBatch(keys);
  ASSERT_TRUE(ba.ok()) << ba.status().ToString();
  ASSERT_TRUE(bb.ok()) << bb.status().ToString();
  EXPECT_EQ(ba->round_trips, bb->round_trips);
  EXPECT_EQ(ba->bytes, bb->bytes);
  ASSERT_EQ(ba->values.size(), bb->values.size());
  for (size_t i = 0; i < ba->values.size(); ++i) {
    EXPECT_EQ(*ba->values[i].Materialize(), *bb->values[i].Materialize())
        << "batch slot " << i;
  }
  // Out-of-range keys fail identically.
  const VertexId bogus = static_cast<VertexId>(a.num_vertices());
  EXPECT_EQ(a.Fetch(bogus).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.Fetch(bogus).status().code(), StatusCode::kOutOfRange);
  // After identical request sequences, the accounting is identical —
  // the invariant that makes metrics comparable across backends.
  EXPECT_EQ(a.stats().fetches.load(), b.stats().fetches.load());
  EXPECT_EQ(a.stats().batch_gets.load(), b.stats().batch_gets.load());
  EXPECT_EQ(a.stats().round_trips.load(), b.stats().round_trips.load());
  EXPECT_EQ(a.stats().bytes.load(), b.stats().bytes.load());
  EXPECT_EQ(a.stats().bytes_encoded.load(), b.stats().bytes_encoded.load());
}

TEST(TransportEquivalenceTest, LoopbackMatchesSimulated) {
  Graph g = std::move(GenerateBarabasiAlbert(60, 3, /*seed=*/7)).value();
  auto sim = MakeSimulatedTransport(g, 4);
  auto loopback = MakeLoopbackTransport(g, 4);
  EXPECT_STREQ(sim->name(), "sim");
  EXPECT_STREQ(loopback->name(), "loopback");
  ExpectSameBehavior(*sim, *loopback);
}

TEST(TransportEquivalenceTest, LoopbackStoreMatchesKvStoreContract) {
  // The loopback-backed store honors the same accounting contract
  // kv_store_test pins for the simulated one. Compression is pinned off:
  // the ReplyBytes formula below is the *raw* frame model.
  Graph g = MakeCycle(8);
  DistributedKvStore store(MakeLoopbackTransport(g, 4, /*compress=*/false));
  EXPECT_EQ(store.num_partitions(), 4u);
  EXPECT_EQ(store.num_vertices(), 8u);
  const VertexId keys[] = {0, 4, 1};  // partitions {0, 0, 1}
  auto reply = store.GetAdjacencyBatch(keys);
  EXPECT_EQ(reply.round_trips, 2u);
  EXPECT_EQ(reply.bytes, 3 * DistributedKvStore::ReplyBytes(2));
  EXPECT_EQ(store.stats().queries.load(), 3u);
  auto empty = store.GetAdjacencyBatch({});
  EXPECT_EQ(empty.round_trips, 0u);
  EXPECT_EQ(store.stats().batch_gets.load(), 1u);
}

BenuOptions TransportRunOptions(std::shared_ptr<Transport> transport) {
  BenuOptions options;
  options.cluster.num_workers = 2;
  options.cluster.threads_per_worker = 2;
  options.cluster.db_partitions = 4;
  options.cluster.db_cache_bytes = 1u << 20;
  options.cluster.task_split_threshold = 100;
  options.cluster.prefetch_budget = 16;
  options.cluster.force_sync_prefetch = true;
  options.cluster.transport = std::move(transport);
  options.relabel_by_degree = false;
  return options;
}

TEST(TransportEquivalenceTest, ClusterRunsIdenticallyOverLoopback) {
  Graph g = std::move(GenerateBarabasiAlbert(150, 4, /*seed=*/21)).value()
                .RelabelByDegree();
  // q5, q9 and clique5 cover the regression set: plain backtracking, a
  // DBQ-heavy plan and the triangle-cache path.
  for (const char* name : {"q5", "q9", "clique5"}) {
    Graph pattern = std::move(GetPattern(name)).value();
    auto sim_run = RunBenu(g, pattern, TransportRunOptions(nullptr));
    ASSERT_TRUE(sim_run.ok()) << sim_run.status().ToString();
    auto loop_run = RunBenu(
        g, pattern, TransportRunOptions(MakeLoopbackTransport(g, 4)));
    ASSERT_TRUE(loop_run.ok()) << loop_run.status().ToString();
    EXPECT_EQ(sim_run->run.total_matches, loop_run->run.total_matches)
        << name;
    EXPECT_EQ(sim_run->run.total_codes, loop_run->run.total_codes) << name;
    EXPECT_EQ(sim_run->run.db_queries, loop_run->run.db_queries) << name;
    EXPECT_EQ(sim_run->run.bytes_fetched, loop_run->run.bytes_fetched)
        << name;
    EXPECT_EQ(sim_run->run.adjacency_requests,
              loop_run->run.adjacency_requests)
        << name;
    EXPECT_EQ(sim_run->run.prefetch_round_trips,
              loop_run->run.prefetch_round_trips)
        << name;
    EXPECT_EQ(sim_run->run.prefetch_bytes, loop_run->run.prefetch_bytes)
        << name;
  }
}

TEST(TransportEquivalenceTest, CompressionPreservesResultsOverLoopback) {
  // Compressed and raw runs must be bit-identical in every enumeration-
  // visible count — only the bytes on the wire shrink.
  Graph g = std::move(GenerateBarabasiAlbert(150, 4, /*seed=*/21)).value()
                .RelabelByDegree();
  for (const char* name : {"q5", "q9", "clique5"}) {
    Graph pattern = std::move(GetPattern(name)).value();
    BenuOptions raw_options =
        TransportRunOptions(MakeLoopbackTransport(g, 4, /*compress=*/false));
    raw_options.cluster.compress_adjacency = false;
    auto raw_run = RunBenu(g, pattern, raw_options);
    ASSERT_TRUE(raw_run.ok()) << raw_run.status().ToString();
    auto comp_run = RunBenu(
        g, pattern, TransportRunOptions(MakeLoopbackTransport(g, 4)));
    ASSERT_TRUE(comp_run.ok()) << comp_run.status().ToString();
    EXPECT_EQ(raw_run->run.total_matches, comp_run->run.total_matches)
        << name;
    EXPECT_EQ(raw_run->run.total_codes, comp_run->run.total_codes) << name;
    EXPECT_EQ(raw_run->run.db_queries, comp_run->run.db_queries) << name;
    EXPECT_EQ(raw_run->run.adjacency_requests,
              comp_run->run.adjacency_requests)
        << name;
    // Same fetches, fewer bytes (per-frame headers are unchanged, the
    // payloads shrink). Vacuous under the BENU_DISABLE_COMPRESSION leg,
    // where both runs are raw — the equality checks above still bite.
    if (codec::CompressionEnabled(true)) {
      EXPECT_LT(comp_run->run.bytes_fetched, raw_run->run.bytes_fetched)
          << name;
    }
    EXPECT_LE(comp_run->run.prefetch_bytes, raw_run->run.prefetch_bytes)
        << name;
  }
}

TEST(TransportValidationTest, RunBenuRelabelsOverMatchingTransport) {
  // The transport attests the labeling it serves via its graph hash;
  // when it already stores the degree-relabeled graph, RunBenu with
  // relabel_by_degree on is consistent and must run — and agree with
  // the null-transport (simulated) relabeled run.
  Graph g =
      std::move(GenerateBarabasiAlbert(60, 3, /*seed=*/7)).value();
  Graph relabeled = g.RelabelByDegree();
  Graph pattern = std::move(GetPattern("triangle")).value();

  BenuOptions sim_options = TransportRunOptions(nullptr);
  sim_options.relabel_by_degree = true;
  auto sim_run = RunBenu(g, pattern, sim_options);
  ASSERT_TRUE(sim_run.ok()) << sim_run.status().ToString();

  BenuOptions options =
      TransportRunOptions(MakeLoopbackTransport(relabeled, 2));
  options.relabel_by_degree = true;
  auto result = RunBenu(g, pattern, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->run.total_matches, sim_run->run.total_matches);
}

TEST(TransportValidationTest, RunBenuRejectsRelabelOverMismatchedTransport) {
  // A star's degree relabeling moves the hub, so a transport built from
  // the *un*relabeled graph serves a different labeling than the
  // relabeled enumeration side would use: hash mismatch, rejected.
  Graph g = MakeStar(4);
  BenuOptions options = TransportRunOptions(MakeLoopbackTransport(g, 2));
  options.relabel_by_degree = true;
  Graph pattern = std::move(GetPattern("triangle")).value();
  auto result = RunBenu(g, pattern, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransportValidationTest, RunBenuRejectsDifferentlyLabeledGraph) {
  // Same vertex count, different edges: the hash check catches what the
  // vertex-count check cannot, even without relabeling.
  Graph g = MakeStar(4);        // 5 vertices
  Graph other = MakeCycle(5);   // 5 vertices
  BenuOptions options =
      TransportRunOptions(MakeLoopbackTransport(other, 2));
  Graph pattern = std::move(GetPattern("triangle")).value();
  auto result = RunBenu(g, pattern, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransportValidationTest, RunBenuRejectsVertexCountMismatch) {
  Graph g = MakeCycle(6);
  Graph other = MakeCycle(9);
  BenuOptions options = TransportRunOptions(MakeLoopbackTransport(other, 2));
  Graph pattern = std::move(GetPattern("triangle")).value();
  auto result = RunBenu(g, pattern, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- TCP --------------------------------------------------------------

TEST(ParseEndpointsTest, GoodAndBad) {
  auto two = ParseEndpoints("127.0.0.1:9001,localhost:80");
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(two->size(), 2u);
  EXPECT_EQ((*two)[0].host, "127.0.0.1");
  EXPECT_EQ((*two)[0].port, 9001);
  EXPECT_EQ((*two)[1].host, "localhost");
  EXPECT_EQ((*two)[1].port, 80);
  EXPECT_FALSE(ParseEndpoints("").ok());
  EXPECT_FALSE(ParseEndpoints("hostonly").ok());
  EXPECT_FALSE(ParseEndpoints("host:notaport").ok());
  EXPECT_FALSE(ParseEndpoints("host:99999").ok());
}

class TcpTransportTest : public ::testing::Test {
 protected:
  static constexpr size_t kPartitions = 4;
  static constexpr size_t kServers = 2;

  void SetUp() override {
    graph_ = std::move(GenerateBarabasiAlbert(80, 3, /*seed=*/13)).value();
    for (size_t i = 0; i < kServers; ++i) {
      servers_.push_back(std::make_unique<KvTcpServer>(
          &graph_, kPartitions, kServers, i));
      ASSERT_TRUE(servers_.back()->Listen(0).ok());
      ASSERT_TRUE(servers_.back()->Start().ok());
      endpoints_.push_back({"127.0.0.1", servers_.back()->port()});
    }
  }

  Graph graph_;
  std::vector<std::unique_ptr<KvTcpServer>> servers_;
  std::vector<Endpoint> endpoints_;
};

TEST_F(TcpTransportTest, MatchesSimulatedBackend) {
  auto tcp = ConnectTcpTransport(endpoints_);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  EXPECT_STREQ((*tcp)->name(), "tcp");
  auto sim = MakeSimulatedTransport(graph_, kPartitions);
  ExpectSameBehavior(*sim, **tcp);
  // The servers actually did the work: every key served exactly once
  // per request, split across the two processes' scopes.
  auto stats0 = QueryServerStats(**tcp, 0);
  auto stats1 = QueryServerStats(**tcp, 1);
  ASSERT_TRUE(stats0.ok());
  ASSERT_TRUE(stats1.ok());
  EXPECT_GT(stats0->keys_served, 0u);
  EXPECT_GT(stats1->keys_served, 0u);
  EXPECT_GT(stats0->bytes_sent, 0u);
}

TEST_F(TcpTransportTest, ClusterRunOverTcpMatchesSim) {
  Graph relabeled = graph_.RelabelByDegree();
  // The TCP servers must serve the same labeling the enumeration uses.
  std::vector<std::unique_ptr<KvTcpServer>> servers;
  std::vector<Endpoint> endpoints;
  for (size_t i = 0; i < kServers; ++i) {
    servers.push_back(std::make_unique<KvTcpServer>(
        &relabeled, kPartitions, kServers, i));
    ASSERT_TRUE(servers.back()->Listen(0).ok());
    ASSERT_TRUE(servers.back()->Start().ok());
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
  }
  auto tcp = ConnectTcpTransport(endpoints);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  Graph pattern = std::move(GetPattern("q5")).value();
  auto sim_run = RunBenu(relabeled, pattern, TransportRunOptions(nullptr));
  ASSERT_TRUE(sim_run.ok()) << sim_run.status().ToString();
  auto tcp_run = RunBenu(relabeled, pattern, TransportRunOptions(*tcp));
  ASSERT_TRUE(tcp_run.ok()) << tcp_run.status().ToString();
  EXPECT_EQ(sim_run->run.total_matches, tcp_run->run.total_matches);
  EXPECT_EQ(sim_run->run.db_queries, tcp_run->run.db_queries);
  EXPECT_EQ(sim_run->run.bytes_fetched, tcp_run->run.bytes_fetched);
}

TEST_F(TcpTransportTest, MixedCapabilityFleetFallsBackToRaw) {
  // Effective compression requires *every* server group to advertise the
  // encoded-reply capability; one raw-only server downgrades the whole
  // client to raw frames (correctness over compression).
  servers_[1]->Stop();
  servers_[1] = std::make_unique<KvTcpServer>(
      &graph_, kPartitions, kServers, 1, 0, 1, /*support_encoding=*/false);
  ASSERT_TRUE(servers_[1]->Listen(0).ok());
  ASSERT_TRUE(servers_[1]->Start().ok());
  endpoints_[1] = {"127.0.0.1", servers_[1]->port()};

  auto tcp = ConnectTcpTransport(endpoints_);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  EXPECT_FALSE((*tcp)->compressed());
  // Raw accounting matches the uncompressed simulated backend exactly.
  auto sim = MakeSimulatedTransport(graph_, kPartitions, /*compress=*/false);
  ExpectSameBehavior(*sim, **tcp);
  EXPECT_EQ((*tcp)->stats().bytes_encoded.load(), 0u);
}

TEST_F(TcpTransportTest, CompressedAndRawRunsAgreeOverTcp) {
  Graph pattern = std::move(GetPattern("q5")).value();
  auto compressed = ConnectTcpTransport(endpoints_);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  EXPECT_EQ((*compressed)->compressed(), codec::CompressionEnabled(true));
  auto comp_run = RunBenu(graph_, pattern, TransportRunOptions(*compressed));
  ASSERT_TRUE(comp_run.ok()) << comp_run.status().ToString();

  std::vector<ReplicaGroup> groups;
  for (const Endpoint& e : endpoints_) groups.push_back({{e}});
  TcpTransportOptions raw_options;
  raw_options.compress = false;
  auto raw = ConnectTcpTransport(groups, raw_options);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_FALSE((*raw)->compressed());
  BenuOptions options = TransportRunOptions(*raw);
  options.cluster.compress_adjacency = false;
  auto raw_run = RunBenu(graph_, pattern, options);
  ASSERT_TRUE(raw_run.ok()) << raw_run.status().ToString();

  EXPECT_EQ(comp_run->run.total_matches, raw_run->run.total_matches);
  EXPECT_EQ(comp_run->run.db_queries, raw_run->run.db_queries);
  if (codec::CompressionEnabled(true)) {
    EXPECT_LT(comp_run->run.bytes_fetched, raw_run->run.bytes_fetched);
  }
}

TEST_F(TcpTransportTest, RejectsMisorderedEndpoints) {
  // Endpoint 0 must be server 0; swapping the list breaks the handshake.
  std::vector<Endpoint> swapped{endpoints_[1], endpoints_[0]};
  auto tcp = ConnectTcpTransport(swapped);
  EXPECT_FALSE(tcp.ok());
  EXPECT_EQ(tcp.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TcpTransportTest, RejectsWrongServerCount) {
  // A single endpoint claims a 2-server layout: num_servers mismatch.
  std::vector<Endpoint> one{endpoints_[0]};
  auto tcp = ConnectTcpTransport(one);
  EXPECT_FALSE(tcp.ok());
  EXPECT_EQ(tcp.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TcpTransportTest, ConcurrentFetchesPipelineCorrectly) {
  // Several worker threads hammer one shared transport: replies must
  // demux back to the right callers (tags), never interleave wrongly.
  auto tcp = ConnectTcpTransport(endpoints_);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 40; ++iter) {
        std::vector<VertexId> keys;
        for (VertexId v = static_cast<VertexId>((t + iter) % 5);
             v < graph_.NumVertices(); v += 5) {
          keys.push_back(v);
        }
        auto batch = (*tcp)->FetchBatch(keys);
        if (!batch.ok()) {
          ++failures;
          return;
        }
        for (size_t i = 0; i < keys.size(); ++i) {
          VertexSetView expected = graph_.Adjacency(keys[i]);
          const VertexSet got = *batch->values[i].Materialize();
          if (got != VertexSet(expected.begin(), expected.end())) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TcpTransportTest, SerialModeMatchesSimulatedBackend) {
  // pipeline=false is the A/B baseline bench_pipeline measures against;
  // it must stay byte-for-byte equivalent too.
  std::vector<ReplicaGroup> groups;
  for (const Endpoint& ep : endpoints_) groups.push_back({{ep}});
  TcpTransportOptions options;
  options.pipeline = false;
  auto tcp = ConnectTcpTransport(groups, options);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  auto sim = MakeSimulatedTransport(graph_, kPartitions);
  ExpectSameBehavior(*sim, **tcp);
}

// --- request tags and replica hello -----------------------------------

TEST(WireTest, FrameTagsRoundTripAcrossSequences) {
  // A reply sequence (two adjacency frames + one error) all get the
  // request's tag stamped; clients read it back per frame.
  VertexSet adjacency{1, 2, 3};
  std::vector<uint8_t> frames;
  wire::AppendAdjacencyReply(4, VertexSetView(adjacency), &frames);
  wire::AppendAdjacencyReply(6, VertexSetView(adjacency), &frames);
  wire::AppendError(StatusCode::kOutOfRange, "nope", &frames);
  wire::TagFrames(frames, 0x1234);

  std::span<const uint8_t> rest = frames;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(wire::FrameTag(rest), 0x1234) << "frame " << i;
    auto frame = wire::DecodeFrame(rest);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->header.flags, 0x1234);
    rest = rest.subspan(frame->frame_bytes);
  }
  EXPECT_TRUE(rest.empty());

  // SetFrameTag touches only the first frame of a buffer.
  wire::SetFrameTag(frames, 7);
  EXPECT_EQ(wire::FrameTag(frames), 7);
  auto first = wire::DecodeFrame(frames);
  ASSERT_TRUE(first.ok());
  std::span<const uint8_t> second =
      std::span<const uint8_t>(frames).subspan(first->frame_bytes);
  EXPECT_EQ(wire::FrameTag(second), 0x1234);
}

TEST(WireTest, TagsNeverCollideWithTheEncodingFlag) {
  // Tags are 15 bits since version 2 (bit 15 is kFlagEncodedPayload).
  // The largest legal tag round-trips with the flag intact, and a tag
  // one past kTagMask wraps to 0 on the wire — the allocator must never
  // hand it out (a client comparing the unmasked value desyncs after
  // 32K in-flight requests; tcp_transport wraps at kTagMask for this).
  std::vector<uint8_t> request;
  wire::AppendGetRequest(3, &request, /*want_encoded=*/true);
  wire::SetFrameTag(request, wire::kTagMask);
  EXPECT_EQ(wire::FrameTag(request), wire::kTagMask);
  auto frame = wire::DecodeFrame(request);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(wire::FrameIsEncoded(*frame));

  wire::SetFrameTag(request, wire::kTagMask + 1);
  EXPECT_EQ(wire::FrameTag(request), 0);
  frame = wire::DecodeFrame(request);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(wire::FrameIsEncoded(*frame)) << "tag overflow ate the flag";
}

TEST(WireTest, ServerEchoesRequestTagOnEveryReplyFrame) {
  Graph g = MakeCycle(6);
  KvPartitionServer server(&g, 2, 1, 0);
  const VertexId keys[] = {0, 2, 4};
  std::vector<uint8_t> request, reply;
  wire::AppendBatchGetRequest(keys, &request);
  wire::SetFrameTag(request, 99);
  server.HandleFrame(request, &reply);
  std::span<const uint8_t> rest = reply;
  int frames = 0;
  while (!rest.empty()) {
    auto frame = wire::DecodeFrame(rest);
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->header.flags, 99) << "reply frame " << frames;
    rest = rest.subspan(frame->frame_bytes);
    ++frames;
  }
  EXPECT_EQ(frames, 3);
}

TEST(WireTest, HelloCarriesReplicaFieldsAndAcceptsLegacyPayload) {
  std::vector<uint8_t> buffer;
  wire::HelloInfo info{100, 8, 2, 1, /*replica_index=*/2,
                       /*num_replicas=*/3};
  wire::AppendHelloReply(info, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->replica_index, 2u);
  EXPECT_EQ(hello->num_replicas, 3u);

  // A legacy 16-byte hello payload (pre-replica protocol) still decodes,
  // defaulting to replica 0 of 1.
  std::vector<uint8_t> legacy;
  wire::AppendHeader(wire::MessageType::kHelloReply, 0, 16, &legacy);
  for (uint32_t word : {100u, 8u, 2u, 1u}) {
    for (int b = 0; b < 4; ++b) {
      legacy.push_back(static_cast<uint8_t>(word >> (8 * b)));
    }
  }
  frame = wire::DecodeFrame(legacy);
  ASSERT_TRUE(frame.ok());
  hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->num_vertices, 100u);
  EXPECT_EQ(hello->server_index, 1u);
  EXPECT_EQ(hello->replica_index, 0u);
  EXPECT_EQ(hello->num_replicas, 1u);
}

// --- versioned-store (delta) frames -----------------------------------

TEST(WireTest, DeltaFramesRoundTrip) {
  std::vector<uint8_t> buffer;
  std::vector<EdgeDelta> ops = {{3, 7, true}, {9, 2, false}};
  wire::AppendApplyDelta(5, ops, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kApplyDelta);
  uint64_t epoch = 0;
  std::vector<EdgeDelta> decoded;
  ASSERT_TRUE(wire::DecodeApplyDelta(*frame, &epoch, &decoded).ok());
  EXPECT_EQ(epoch, 5u);
  EXPECT_EQ(decoded, ops);

  buffer.clear();
  wire::AppendEpochAdvance(6, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto advance = wire::DecodeEpochAdvance(*frame);
  ASSERT_TRUE(advance.ok());
  EXPECT_EQ(*advance, 6u);

  buffer.clear();
  wire::AppendMatchDelta({4, 10, 3, 107}, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto delta = wire::DecodeMatchDelta(*frame);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, (wire::MatchDelta{4, 10, 3, 107}));

  buffer.clear();
  wire::AppendDeltaAck(5, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto ack = wire::DecodeDeltaAck(*frame);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(*ack, 5u);
}

TEST(WireTest, HelloCarriesEpochAndAcceptsPreDeltaPayloads) {
  wire::HelloInfo info{100, 8, 2, 1, 0, 1,
                       wire::kHelloSupportsDeltas, 0xabcd1234u, 9};
  std::vector<uint8_t> buffer;
  wire::AppendHelloReply(info, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->epoch, 9u);
  EXPECT_NE(hello->flags & wire::kHelloSupportsDeltas, 0u);

  // A 32-byte (v2, pre-delta) hello payload still decodes: epoch 0.
  std::vector<uint8_t> legacy;
  wire::AppendHeader(wire::MessageType::kHelloReply, 0, 32, &legacy);
  for (uint32_t word : {100u, 8u, 2u, 1u, 0u, 1u, 0u, 0xabcd1234u}) {
    for (int b = 0; b < 4; ++b) {
      legacy.push_back(static_cast<uint8_t>(word >> (8 * b)));
    }
  }
  frame = wire::DecodeFrame(legacy);
  ASSERT_TRUE(frame.ok());
  hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->epoch, 0u);
  EXPECT_EQ(hello->graph_hash, 0xabcd1234u);
}

TEST(KvPartitionServerTest, DeltaFramesValidateEpochSequence) {
  Graph g = std::move(Graph::FromEdges(4, {{0, 1}, {1, 2}})).value();
  KvPartitionServer server(&g, /*num_partitions=*/2, /*num_servers=*/1,
                           /*server_index=*/0);
  std::vector<uint8_t> request, reply;
  std::vector<EdgeDelta> ops = {{0, 3, true}};

  // Target epoch must be current+1: a jump is rejected.
  wire::AppendApplyDelta(2, ops, &request);
  server.HandleFrame(request, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kError);
  EXPECT_EQ(wire::DecodeError(*frame).code(),
            StatusCode::kFailedPrecondition);

  // The in-sequence delta is acked; commit via kEpochAdvance.
  request.clear();
  reply.clear();
  wire::AppendApplyDelta(1, ops, &request);
  server.HandleFrame(request, &reply);
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->header.type, wire::MessageType::kDeltaAck);
  EXPECT_EQ(std::move(wire::DecodeDeltaAck(*frame)).value(), 1u);
  EXPECT_EQ(server.epoch(), 0u);  // not committed yet

  request.clear();
  reply.clear();
  wire::AppendEpochAdvance(1, &request);
  server.HandleFrame(request, &reply);
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->header.type, wire::MessageType::kDeltaAck);
  EXPECT_EQ(server.epoch(), 1u);

  // The hello now attests (hash, epoch).
  request.clear();
  reply.clear();
  wire::AppendHelloRequest(&request);
  server.HandleFrame(request, &reply);
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  auto hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->epoch, 1u);
  EXPECT_NE(hello->flags & wire::kHelloSupportsDeltas, 0u);
}

TEST(KvPartitionServerTest, PreDeltaServerRejectsDeltaFrames) {
  Graph g = std::move(Graph::FromEdges(4, {{0, 1}})).value();
  KvPartitionServer server(&g, 2, 1, 0, /*replica_index=*/0,
                           /*num_replicas=*/1, /*support_encoding=*/true,
                           /*support_deltas=*/false);
  std::vector<uint8_t> request, reply;
  wire::AppendHelloRequest(&request);
  server.HandleFrame(request, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  auto hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->flags & wire::kHelloSupportsDeltas, 0u);

  request.clear();
  reply.clear();
  wire::AppendEpochAdvance(1, &request);
  server.HandleFrame(request, &reply);
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kError);
  EXPECT_EQ(wire::DecodeError(*frame).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ParseReplicaGroupsTest, GoodAndBad) {
  auto groups = ParseReplicaGroups("a:1|b:2,c:3");
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  ASSERT_EQ(groups->size(), 2u);
  ASSERT_EQ((*groups)[0].replicas.size(), 2u);
  EXPECT_EQ((*groups)[0].replicas[0].host, "a");
  EXPECT_EQ((*groups)[0].replicas[1].port, 2);
  ASSERT_EQ((*groups)[1].replicas.size(), 1u);
  EXPECT_EQ((*groups)[1].replicas[0].host, "c");
  // Plain endpoint lists are valid single-replica specs.
  auto plain = ParseReplicaGroups("x:1,y:2");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)[0].replicas.size(), 1u);
  EXPECT_FALSE(ParseReplicaGroups("").ok());
  EXPECT_FALSE(ParseReplicaGroups("a:1|").ok());
  EXPECT_FALSE(ParseReplicaGroups("a:1|noport,b:2").ok());
}

// --- socket error discrimination --------------------------------------

TEST(SocketIoTest, PeerEofIsUnavailableNotIoError) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::CloseFd(fds[1]);  // peer goes away
  uint8_t byte = 0;
  const Status st = net::ReadExact(fds[0], &byte, 1);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  net::CloseFd(fds[0]);
}

TEST(SocketIoTest, NoProgressReadTimesOutAsDeadlineExceeded) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(net::SetNonBlocking(fds[0]).ok());
  uint8_t byte = 0;
  const Status st = net::ReadExact(fds[0], &byte, 1, /*timeout_ms=*/50);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  net::CloseFd(fds[0]);
  net::CloseFd(fds[1]);
}

// --- fault injection: misbehaving and dying servers -------------------

/// A minimal hand-rolled TCP server speaking the wire protocol, with a
/// scriptable fault: either it corrupts the key of the first batch reply
/// it sends (then behaves), or it goes mute after the hello handshake.
/// Serves connections sequentially — the client under test reconnects
/// after tearing a connection down, so one at a time is all it needs.
class ScriptedTcpServer {
 public:
  enum class Fault { kCorruptFirstBatchReply, kMuteAfterHello };

  ScriptedTcpServer(const Graph* graph, size_t partitions, Fault fault)
      : server_(graph, partitions, 1, 0), fault_(fault) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    BENU_CHECK(listen_fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    BENU_CHECK(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0);
    BENU_CHECK(listen(listen_fd_, 8) == 0);
    socklen_t len = sizeof(addr);
    BENU_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~ScriptedTcpServer() {
    shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocked accept
    thread_.join();
    net::CloseFd(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop() {
    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      ServeConn(fd);
      net::CloseFd(fd);
    }
  }

  void ServeConn(int fd) {
    std::vector<uint8_t> request, out;
    for (;;) {
      if (!net::ReadWireFrame(fd, &request).ok()) return;
      auto frame = wire::DecodeFrame(request);
      if (!frame.ok()) return;
      const bool is_hello =
          frame->header.type == wire::MessageType::kHelloRequest;
      if (!is_hello && fault_ == Fault::kMuteAfterHello) continue;
      out.clear();
      server_.HandleFrame(request, &out);
      if (!is_hello && !corrupted_ &&
          fault_ == Fault::kCorruptFirstBatchReply &&
          frame->header.type == wire::MessageType::kBatchGetRequest) {
        out[8] ^= 0x01;  // flip the key (aux) of the first reply frame
        corrupted_ = true;
      }
      if (!net::WriteAll(fd, out).ok()) return;
    }
  }

  KvPartitionServer server_;
  const Fault fault_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool corrupted_ = false;
  std::thread thread_;
};

TcpTransportOptions FastRetryOptions() {
  TcpTransportOptions options;
  options.connect_timeout_ms = 2000;
  options.request_timeout_ms = 2000;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 10;
  return options;
}

TEST(TcpFaultTest, RecoversFromMidBatchCorruptReply) {
  // Regression for the stale-frame bug: a mid-batch decode error used to
  // leave the remaining reply frames unread on the socket, so the *next*
  // request read stale frames. The transport must instead drop the
  // connection and retry — transparently, with identical accounting.
  Graph g = MakeCycle(12);
  ScriptedTcpServer bad(&g, /*partitions=*/2,
                        ScriptedTcpServer::Fault::kCorruptFirstBatchReply);
  std::vector<ReplicaGroup> groups{{{{"127.0.0.1", bad.port()}}}};
  auto tcp = ConnectTcpTransport(groups, FastRetryOptions());
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  auto sim = MakeSimulatedTransport(g, 2);
  // The first FetchBatch inside hits the corrupt frame and recovers;
  // every fetch afterwards (including follow-up singles) must see clean
  // replies, and the accounting must match the sim backend exactly.
  ExpectSameBehavior(*sim, **tcp);

  auto faults = QueryTcpFaultStats(**tcp);
  ASSERT_TRUE(faults.ok());
  EXPECT_GE(faults->retries, 1u);
  EXPECT_GE(faults->reconnects, 1u);
}

TEST(TcpFaultTest, MuteServerSurfacesBoundedTimeout) {
  Graph g = MakeCycle(8);
  ScriptedTcpServer mute(&g, /*partitions=*/2,
                         ScriptedTcpServer::Fault::kMuteAfterHello);
  std::vector<ReplicaGroup> groups{{{{"127.0.0.1", mute.port()}}}};
  TcpTransportOptions options = FastRetryOptions();
  options.request_timeout_ms = 100;  // fail fast: the server never replies
  options.max_attempts = 2;
  auto tcp = ConnectTcpTransport(groups, options);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  const auto start = std::chrono::steady_clock::now();
  auto fetched = (*tcp)->Fetch(0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kDeadlineExceeded)
      << fetched.status().ToString();
  // Two attempts at 100ms each plus reconnect/backoff slack — but no
  // eternal stall.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  auto faults = QueryTcpFaultStats(**tcp);
  ASSERT_TRUE(faults.ok());
  EXPECT_GE(faults->timeouts, 1u);
  EXPECT_GE(faults->retries, 1u);
}

TEST(TcpFaultTest, FailsOverToReplicaWhenServerStops) {
  Graph g = std::move(GenerateBarabasiAlbert(60, 3, /*seed=*/5)).value();
  constexpr size_t kPartitions = 2;
  // One server group, two in-process replicas serving identical data.
  KvTcpServer replica0(&g, kPartitions, 1, 0, /*replica_index=*/0,
                       /*num_replicas=*/2);
  KvTcpServer replica1(&g, kPartitions, 1, 0, /*replica_index=*/1,
                       /*num_replicas=*/2);
  for (KvTcpServer* server : {&replica0, &replica1}) {
    ASSERT_TRUE(server->Listen(0).ok());
    ASSERT_TRUE(server->Start().ok());
  }
  std::vector<ReplicaGroup> groups{{{{"127.0.0.1", replica0.port()},
                                     {"127.0.0.1", replica1.port()}}}};
  auto tcp = ConnectTcpTransport(groups, FastRetryOptions());
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  auto before = (*tcp)->Fetch(3);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  replica0.Stop();  // the replica the client connected to dies

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto after = (*tcp)->Fetch(v);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    VertexSetView expected = g.Adjacency(v);
    EXPECT_EQ(*after->Materialize(),
              VertexSet(expected.begin(), expected.end()));
  }
  auto faults = QueryTcpFaultStats(**tcp);
  ASSERT_TRUE(faults.ok());
  EXPECT_GE(faults->failovers, 1u);
  EXPECT_GE(faults->reconnects, 1u);
}

// --- SIGKILL a real server process mid-enumeration --------------------

#ifdef BENU_KV_SERVER_BIN

/// Forks and execs one benu_kv_server, returning its pid and port.
std::pair<pid_t, uint16_t> SpawnKvServer(const std::string& graph_spec,
                                         size_t partitions, size_t servers,
                                         size_t index, size_t replica,
                                         size_t replicas) {
  int pipefd[2];
  EXPECT_EQ(pipe(pipefd), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    close(pipefd[0]);
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[1]);
    const std::string graph_arg = "--graph=" + graph_spec;
    const std::string part_arg = "--partitions=" + std::to_string(partitions);
    const std::string servers_arg = "--servers=" + std::to_string(servers);
    const std::string index_arg = "--index=" + std::to_string(index);
    const std::string replica_arg = "--replica=" + std::to_string(replica);
    const std::string replicas_arg = "--replicas=" + std::to_string(replicas);
    execl(BENU_KV_SERVER_BIN, BENU_KV_SERVER_BIN, graph_arg.c_str(),
          part_arg.c_str(), servers_arg.c_str(), index_arg.c_str(),
          replica_arg.c_str(), replicas_arg.c_str(), "--port=0",
          "--relabel=1", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(pipefd[1]);
  FILE* out = fdopen(pipefd[0], "r");
  uint16_t port = 0;
  char line[256];
  while (out != nullptr && std::fgets(line, sizeof(line), out) != nullptr) {
    unsigned parsed = 0;
    if (std::sscanf(line, "LISTENING port=%u", &parsed) == 1) {
      port = static_cast<uint16_t>(parsed);
      break;
    }
  }
  if (out != nullptr) std::fclose(out);
  return {pid, port};
}

TEST(TcpFaultTest, SigkillMidEnumerationFailsOverWithIdenticalCounts) {
  if (access(BENU_KV_SERVER_BIN, X_OK) != 0) {
    GTEST_SKIP() << "benu_kv_server binary not found at "
                 << BENU_KV_SERVER_BIN;
  }
  const std::string graph_spec = "ba:300,5,21";
  constexpr size_t kPartitions = 4;  // matches TransportRunOptions
  constexpr size_t kServers = 2;
  constexpr size_t kReplicas = 2;

  std::vector<std::pair<pid_t, uint16_t>> procs;
  std::vector<ReplicaGroup> groups;
  for (size_t i = 0; i < kServers; ++i) {
    ReplicaGroup group;
    for (size_t r = 0; r < kReplicas; ++r) {
      procs.push_back(
          SpawnKvServer(graph_spec, kPartitions, kServers, i, r, kReplicas));
      ASSERT_NE(procs.back().second, 0)
          << "server " << i << "/" << r << " did not come up";
      group.replicas.push_back({"127.0.0.1", procs.back().second});
    }
    groups.push_back(std::move(group));
  }
  auto reap_all = [&procs] {
    for (auto& [pid, port] : procs) {
      if (pid > 0) kill(pid, SIGKILL);
    }
    for (auto& [pid, port] : procs) {
      if (pid > 0) waitpid(pid, nullptr, 0);
      pid = -1;
    }
  };

  auto graph_or = GenerateFromSpec(graph_spec);
  ASSERT_TRUE(graph_or.ok());
  const Graph graph = graph_or->RelabelByDegree();
  Graph pattern = std::move(GetPattern("q5")).value();

  auto tcp = ConnectTcpTransport(groups, FastRetryOptions());
  if (!tcp.ok()) reap_all();
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  // Watcher: once the enumeration has demonstrably started issuing wire
  // traffic, SIGKILL the replica the client is connected to (group 0's
  // first). A tiny DB cache below keeps traffic flowing for the whole
  // run, so the kill reliably lands mid-enumeration.
  std::atomic<bool> done{false};
  std::thread killer([&] {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!done.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < give_up) {
      if ((*tcp)->stats().round_trips.load(std::memory_order_relaxed) >=
          20) {
        kill(procs.front().first, SIGKILL);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  BenuOptions options = TransportRunOptions(*tcp);
  options.cluster.db_cache_bytes = 4096;
  auto tcp_run = RunBenu(graph, pattern, options);
  done.store(true, std::memory_order_relaxed);
  killer.join();

  BenuOptions sim_options = TransportRunOptions(nullptr);
  sim_options.cluster.db_cache_bytes = 4096;
  auto sim_run = RunBenu(graph, pattern, sim_options);

  auto faults = QueryTcpFaultStats(**tcp);
  tcp.value().reset();
  reap_all();

  ASSERT_TRUE(tcp_run.ok()) << tcp_run.status().ToString();
  ASSERT_TRUE(sim_run.ok()) << sim_run.status().ToString();
  EXPECT_EQ(tcp_run->run.total_matches, sim_run->run.total_matches);
  ASSERT_TRUE(faults.ok());
  EXPECT_GE(faults->failovers, 1u);
}

#endif  // BENU_KV_SERVER_BIN

}  // namespace
}  // namespace benu
