#include "storage/transport.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/wire.h"
#include "distributed/benu_driver.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/kv_server.h"
#include "storage/kv_store.h"
#include "storage/kv_tcp_server.h"
#include "storage/tcp_transport.h"

namespace benu {
namespace {

// --- wire protocol ----------------------------------------------------

TEST(WireTest, HeaderMatchesModeledReplyOverhead) {
  // The whole byte-equivalence story of the transport layer hangs on
  // this: a real adjacency reply frame weighs exactly what the simulator
  // has always charged per reply.
  EXPECT_EQ(wire::kHeaderBytes, DistributedKvStore::kReplyOverheadBytes);
  EXPECT_EQ(wire::AdjacencyReplyBytes(7),
            DistributedKvStore::ReplyBytes(7));
}

TEST(WireTest, AdjacencyReplyRoundTrips) {
  VertexSet adjacency{3, 5, 8, 1000000};
  std::vector<uint8_t> buffer;
  wire::AppendAdjacencyReply(42, VertexSetView(adjacency), &buffer);
  EXPECT_EQ(buffer.size(), wire::AdjacencyReplyBytes(adjacency.size()));

  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->frame_bytes, buffer.size());
  VertexId key = kInvalidVertex;
  VertexSet decoded;
  auto st = wire::DecodeAdjacencyReply(*frame, &key, &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(key, 42u);
  EXPECT_EQ(decoded, adjacency);
}

TEST(WireTest, RequestsRoundTrip) {
  std::vector<uint8_t> buffer;
  wire::AppendGetRequest(17, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto key = wire::DecodeGetRequest(*frame);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, 17u);

  buffer.clear();
  const VertexId keys[] = {4, 9, 2};
  wire::AppendBatchGetRequest(keys, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto decoded = wire::DecodeBatchGetRequest(*frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (std::vector<VertexId>{4, 9, 2}));
}

TEST(WireTest, HelloAndStatsRoundTrip) {
  std::vector<uint8_t> buffer;
  wire::HelloInfo info{100, 8, 2, 1};
  wire::AppendHelloReply(info, &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto hello = wire::DecodeHelloReply(*frame);
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->num_vertices, 100u);
  EXPECT_EQ(hello->num_partitions, 8u);
  EXPECT_EQ(hello->num_servers, 2u);
  EXPECT_EQ(hello->server_index, 1u);

  buffer.clear();
  wire::AppendStatsReply({7, 11, 13}, &buffer);
  frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  auto stats = wire::DecodeStatsReply(*frame);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->requests, 7u);
  EXPECT_EQ(stats->keys_served, 11u);
  EXPECT_EQ(stats->bytes_sent, 13u);
}

TEST(WireTest, ErrorFrameCarriesStatus) {
  std::vector<uint8_t> buffer;
  wire::AppendError(StatusCode::kOutOfRange, "key 99 not here", &buffer);
  auto frame = wire::DecodeFrame(buffer);
  ASSERT_TRUE(frame.ok());
  const Status st = wire::DecodeError(*frame);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(st.message(), "key 99 not here");
  // Typed decoders convert an unexpected kError frame into its Status.
  VertexId key;
  VertexSet out;
  EXPECT_EQ(wire::DecodeAdjacencyReply(*frame, &key, &out).code(),
            StatusCode::kOutOfRange);
}

TEST(WireTest, RejectsMalformedFrames) {
  std::vector<uint8_t> buffer;
  wire::AppendGetRequest(1, &buffer);

  std::vector<uint8_t> bad_magic = buffer;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(wire::DecodeFrame(bad_magic).ok());

  std::vector<uint8_t> bad_version = buffer;
  bad_version[4] = wire::kVersion + 1;
  EXPECT_FALSE(wire::DecodeFrame(bad_version).ok());

  std::vector<uint8_t> short_buffer(buffer.begin(), buffer.begin() + 8);
  EXPECT_FALSE(wire::DecodeFrame(short_buffer).ok());

  VertexSet adjacency{1, 2, 3};
  std::vector<uint8_t> truncated;
  wire::AppendAdjacencyReply(0, VertexSetView(adjacency), &truncated);
  truncated.resize(truncated.size() - 2);  // payload shorter than header says
  EXPECT_FALSE(wire::DecodeFrame(truncated).ok());
}

// --- partition server -------------------------------------------------

TEST(KvPartitionServerTest, ServesOwnedKeysOnly) {
  Graph g = MakeCycle(8);
  // 4 partitions over 2 servers: server 0 owns partitions {0, 2}, i.e.
  // vertices {0, 2, 4, 6}.
  KvPartitionServer server(&g, /*num_partitions=*/4, /*num_servers=*/2,
                           /*server_index=*/0);
  EXPECT_TRUE(server.Serves(0));
  EXPECT_FALSE(server.Serves(1));
  EXPECT_TRUE(server.Serves(2));
  EXPECT_FALSE(server.Serves(99));  // out of the graph entirely

  std::vector<uint8_t> request, reply;
  wire::AppendGetRequest(4, &request);
  server.HandleFrame(request, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  VertexId key;
  VertexSet adjacency;
  ASSERT_TRUE(wire::DecodeAdjacencyReply(*frame, &key, &adjacency).ok());
  EXPECT_EQ(key, 4u);
  EXPECT_EQ(adjacency, (VertexSet{3, 5}));

  request.clear();
  reply.clear();
  wire::AppendGetRequest(1, &request);  // partition 1 — not this server
  server.HandleFrame(request, &reply);
  frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(wire::DecodeError(*frame).code(), StatusCode::kOutOfRange);
}

TEST(KvPartitionServerTest, BatchStopsAtFirstBadKey) {
  Graph g = MakeCycle(6);
  KvPartitionServer server(&g, /*num_partitions=*/2, /*num_servers=*/1,
                           /*server_index=*/0);
  const VertexId keys[] = {0, 99, 2};  // 99 is out of the graph
  std::vector<uint8_t> request, reply;
  wire::AppendBatchGetRequest(keys, &request);
  server.HandleFrame(request, &reply);

  auto first = wire::DecodeFrame(reply);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->header.type, wire::MessageType::kGetReply);
  std::span<const uint8_t> rest =
      std::span<const uint8_t>(reply).subspan(first->frame_bytes);
  auto second = wire::DecodeFrame(rest);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->header.type, wire::MessageType::kError);
  // The error replaces the remaining replies.
  EXPECT_EQ(first->frame_bytes + second->frame_bytes, reply.size());
}

TEST(KvPartitionServerTest, SurvivesGarbageInput) {
  Graph g = MakeCycle(4);
  KvPartitionServer server(&g, 1, 1, 0);
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  std::vector<uint8_t> reply;
  server.HandleFrame(garbage, &reply);
  auto frame = wire::DecodeFrame(reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.type, wire::MessageType::kError);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().keys_served, 0u);
}

// --- backend equivalence ----------------------------------------------

void ExpectSameBehavior(Transport& a, Transport& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  // Single fetches.
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    auto fa = a.Fetch(v);
    auto fb = b.Fetch(v);
    ASSERT_TRUE(fa.ok()) << fa.status().ToString();
    ASSERT_TRUE(fb.ok()) << fb.status().ToString();
    EXPECT_EQ(**fa, **fb) << "adjacency of vertex " << v;
  }
  // A batch spanning several partitions, unsorted.
  std::vector<VertexId> keys;
  for (VertexId v = 0; v < a.num_vertices(); v += 2) keys.push_back(v);
  std::reverse(keys.begin(), keys.end());
  auto ba = a.FetchBatch(keys);
  auto bb = b.FetchBatch(keys);
  ASSERT_TRUE(ba.ok()) << ba.status().ToString();
  ASSERT_TRUE(bb.ok()) << bb.status().ToString();
  EXPECT_EQ(ba->round_trips, bb->round_trips);
  EXPECT_EQ(ba->bytes, bb->bytes);
  ASSERT_EQ(ba->values.size(), bb->values.size());
  for (size_t i = 0; i < ba->values.size(); ++i) {
    EXPECT_EQ(*ba->values[i], *bb->values[i]) << "batch slot " << i;
  }
  // Out-of-range keys fail identically.
  const VertexId bogus = static_cast<VertexId>(a.num_vertices());
  EXPECT_EQ(a.Fetch(bogus).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(b.Fetch(bogus).status().code(), StatusCode::kOutOfRange);
  // After identical request sequences, the accounting is identical —
  // the invariant that makes metrics comparable across backends.
  EXPECT_EQ(a.stats().fetches.load(), b.stats().fetches.load());
  EXPECT_EQ(a.stats().batch_gets.load(), b.stats().batch_gets.load());
  EXPECT_EQ(a.stats().round_trips.load(), b.stats().round_trips.load());
  EXPECT_EQ(a.stats().bytes.load(), b.stats().bytes.load());
}

TEST(TransportEquivalenceTest, LoopbackMatchesSimulated) {
  Graph g = std::move(GenerateBarabasiAlbert(60, 3, /*seed=*/7)).value();
  auto sim = MakeSimulatedTransport(g, 4);
  auto loopback = MakeLoopbackTransport(g, 4);
  EXPECT_STREQ(sim->name(), "sim");
  EXPECT_STREQ(loopback->name(), "loopback");
  ExpectSameBehavior(*sim, *loopback);
}

TEST(TransportEquivalenceTest, LoopbackStoreMatchesKvStoreContract) {
  // The loopback-backed store honors the same accounting contract
  // kv_store_test pins for the simulated one.
  Graph g = MakeCycle(8);
  DistributedKvStore store(MakeLoopbackTransport(g, 4));
  EXPECT_EQ(store.num_partitions(), 4u);
  EXPECT_EQ(store.num_vertices(), 8u);
  const VertexId keys[] = {0, 4, 1};  // partitions {0, 0, 1}
  auto reply = store.GetAdjacencyBatch(keys);
  EXPECT_EQ(reply.round_trips, 2u);
  EXPECT_EQ(reply.bytes, 3 * DistributedKvStore::ReplyBytes(2));
  EXPECT_EQ(store.stats().queries.load(), 3u);
  auto empty = store.GetAdjacencyBatch({});
  EXPECT_EQ(empty.round_trips, 0u);
  EXPECT_EQ(store.stats().batch_gets.load(), 1u);
}

BenuOptions TransportRunOptions(std::shared_ptr<Transport> transport) {
  BenuOptions options;
  options.cluster.num_workers = 2;
  options.cluster.threads_per_worker = 2;
  options.cluster.db_partitions = 4;
  options.cluster.db_cache_bytes = 1u << 20;
  options.cluster.task_split_threshold = 100;
  options.cluster.prefetch_budget = 16;
  options.cluster.force_sync_prefetch = true;
  options.cluster.transport = std::move(transport);
  options.relabel_by_degree = false;
  return options;
}

TEST(TransportEquivalenceTest, ClusterRunsIdenticallyOverLoopback) {
  Graph g = std::move(GenerateBarabasiAlbert(150, 4, /*seed=*/21)).value()
                .RelabelByDegree();
  // q5, q9 and clique5 cover the regression set: plain backtracking, a
  // DBQ-heavy plan and the triangle-cache path.
  for (const char* name : {"q5", "q9", "clique5"}) {
    Graph pattern = std::move(GetPattern(name)).value();
    auto sim_run = RunBenu(g, pattern, TransportRunOptions(nullptr));
    ASSERT_TRUE(sim_run.ok()) << sim_run.status().ToString();
    auto loop_run = RunBenu(
        g, pattern, TransportRunOptions(MakeLoopbackTransport(g, 4)));
    ASSERT_TRUE(loop_run.ok()) << loop_run.status().ToString();
    EXPECT_EQ(sim_run->run.total_matches, loop_run->run.total_matches)
        << name;
    EXPECT_EQ(sim_run->run.total_codes, loop_run->run.total_codes) << name;
    EXPECT_EQ(sim_run->run.db_queries, loop_run->run.db_queries) << name;
    EXPECT_EQ(sim_run->run.bytes_fetched, loop_run->run.bytes_fetched)
        << name;
    EXPECT_EQ(sim_run->run.adjacency_requests,
              loop_run->run.adjacency_requests)
        << name;
    EXPECT_EQ(sim_run->run.prefetch_round_trips,
              loop_run->run.prefetch_round_trips)
        << name;
    EXPECT_EQ(sim_run->run.prefetch_bytes, loop_run->run.prefetch_bytes)
        << name;
  }
}

TEST(TransportValidationTest, RunBenuRejectsRelabelWithTransport) {
  Graph g = MakeCycle(6);
  BenuOptions options = TransportRunOptions(MakeLoopbackTransport(g, 2));
  options.relabel_by_degree = true;
  Graph pattern = std::move(GetPattern("triangle")).value();
  auto result = RunBenu(g, pattern, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransportValidationTest, RunBenuRejectsVertexCountMismatch) {
  Graph g = MakeCycle(6);
  Graph other = MakeCycle(9);
  BenuOptions options = TransportRunOptions(MakeLoopbackTransport(other, 2));
  Graph pattern = std::move(GetPattern("triangle")).value();
  auto result = RunBenu(g, pattern, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- TCP --------------------------------------------------------------

TEST(ParseEndpointsTest, GoodAndBad) {
  auto two = ParseEndpoints("127.0.0.1:9001,localhost:80");
  ASSERT_TRUE(two.ok());
  ASSERT_EQ(two->size(), 2u);
  EXPECT_EQ((*two)[0].host, "127.0.0.1");
  EXPECT_EQ((*two)[0].port, 9001);
  EXPECT_EQ((*two)[1].host, "localhost");
  EXPECT_EQ((*two)[1].port, 80);
  EXPECT_FALSE(ParseEndpoints("").ok());
  EXPECT_FALSE(ParseEndpoints("hostonly").ok());
  EXPECT_FALSE(ParseEndpoints("host:notaport").ok());
  EXPECT_FALSE(ParseEndpoints("host:99999").ok());
}

class TcpTransportTest : public ::testing::Test {
 protected:
  static constexpr size_t kPartitions = 4;
  static constexpr size_t kServers = 2;

  void SetUp() override {
    graph_ = std::move(GenerateBarabasiAlbert(80, 3, /*seed=*/13)).value();
    for (size_t i = 0; i < kServers; ++i) {
      servers_.push_back(std::make_unique<KvTcpServer>(
          &graph_, kPartitions, kServers, i));
      ASSERT_TRUE(servers_.back()->Listen(0).ok());
      ASSERT_TRUE(servers_.back()->Start().ok());
      endpoints_.push_back({"127.0.0.1", servers_.back()->port()});
    }
  }

  Graph graph_;
  std::vector<std::unique_ptr<KvTcpServer>> servers_;
  std::vector<Endpoint> endpoints_;
};

TEST_F(TcpTransportTest, MatchesSimulatedBackend) {
  auto tcp = ConnectTcpTransport(endpoints_);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  EXPECT_STREQ((*tcp)->name(), "tcp");
  auto sim = MakeSimulatedTransport(graph_, kPartitions);
  ExpectSameBehavior(*sim, **tcp);
  // The servers actually did the work: every key served exactly once
  // per request, split across the two processes' scopes.
  auto stats0 = QueryServerStats(**tcp, 0);
  auto stats1 = QueryServerStats(**tcp, 1);
  ASSERT_TRUE(stats0.ok());
  ASSERT_TRUE(stats1.ok());
  EXPECT_GT(stats0->keys_served, 0u);
  EXPECT_GT(stats1->keys_served, 0u);
  EXPECT_GT(stats0->bytes_sent, 0u);
}

TEST_F(TcpTransportTest, ClusterRunOverTcpMatchesSim) {
  Graph relabeled = graph_.RelabelByDegree();
  // The TCP servers must serve the same labeling the enumeration uses.
  std::vector<std::unique_ptr<KvTcpServer>> servers;
  std::vector<Endpoint> endpoints;
  for (size_t i = 0; i < kServers; ++i) {
    servers.push_back(std::make_unique<KvTcpServer>(
        &relabeled, kPartitions, kServers, i));
    ASSERT_TRUE(servers.back()->Listen(0).ok());
    ASSERT_TRUE(servers.back()->Start().ok());
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
  }
  auto tcp = ConnectTcpTransport(endpoints);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();

  Graph pattern = std::move(GetPattern("q5")).value();
  auto sim_run = RunBenu(relabeled, pattern, TransportRunOptions(nullptr));
  ASSERT_TRUE(sim_run.ok()) << sim_run.status().ToString();
  auto tcp_run = RunBenu(relabeled, pattern, TransportRunOptions(*tcp));
  ASSERT_TRUE(tcp_run.ok()) << tcp_run.status().ToString();
  EXPECT_EQ(sim_run->run.total_matches, tcp_run->run.total_matches);
  EXPECT_EQ(sim_run->run.db_queries, tcp_run->run.db_queries);
  EXPECT_EQ(sim_run->run.bytes_fetched, tcp_run->run.bytes_fetched);
}

TEST_F(TcpTransportTest, RejectsMisorderedEndpoints) {
  // Endpoint 0 must be server 0; swapping the list breaks the handshake.
  std::vector<Endpoint> swapped{endpoints_[1], endpoints_[0]};
  auto tcp = ConnectTcpTransport(swapped);
  EXPECT_FALSE(tcp.ok());
  EXPECT_EQ(tcp.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TcpTransportTest, RejectsWrongServerCount) {
  // A single endpoint claims a 2-server layout: num_servers mismatch.
  std::vector<Endpoint> one{endpoints_[0]};
  auto tcp = ConnectTcpTransport(one);
  EXPECT_FALSE(tcp.ok());
  EXPECT_EQ(tcp.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace benu
