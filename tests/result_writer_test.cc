#include "core/result_writer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "baselines/bruteforce.h"
#include "core/executor.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/symmetry_breaking.h"
#include "plan/vcbc.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Runs the plan over all start vertices into a result file at `path`.
void WriteResults(const ExecutionPlan& plan, const Graph& data,
                  const std::string& path) {
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan, &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  auto writer = ResultFileWriter::Open(path, plan);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, writer->get());
  }
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(ResultWriterTest, PlainRoundTrip) {
  auto data = GenerateErdosRenyi(30, 90, 5);
  ASSERT_TRUE(data.ok());
  Graph p = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(3), cs);
  ASSERT_TRUE(plan.ok());
  const std::string path = TempPath("plain.benur");
  WriteResults(*plan, *data, path);

  auto info = ReadResultFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->compressed);
  auto expected = BruteForceCount(*data, p, cs);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(info->matches, *expected);
  EXPECT_EQ(info->records, *expected);

  auto matches = ReadAllMatches(path);
  ASSERT_TRUE(matches.ok());
  std::sort(matches->begin(), matches->end());
  auto oracle = BruteForceEnumerate(*data, p, cs);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*matches, *oracle);
  std::remove(path.c_str());
}

TEST(ResultWriterTest, CompressedRoundTripAcrossPatterns) {
  auto data = GenerateBarabasiAlbert(80, 4, 3);
  ASSERT_TRUE(data.ok());
  for (const std::string name : {"q4", "q5", "q8", "square"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
    ASSERT_TRUE(plan.ok());
    OptimizePlan(&plan.value());
    ASSERT_TRUE(ApplyVcbcCompression(&plan.value()).ok());
    const std::string path = TempPath("compressed_" + name + ".benur");
    WriteResults(*plan, *data, path);

    auto info = ReadResultFile(path);
    ASSERT_TRUE(info.ok()) << name << ": " << info.status().ToString();
    EXPECT_TRUE(info->compressed);
    auto expected = BruteForceCount(*data, p, cs);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(info->matches, *expected) << name;
    EXPECT_LE(info->records, info->matches) << name;

    auto matches = ReadAllMatches(path);
    ASSERT_TRUE(matches.ok());
    std::sort(matches->begin(), matches->end());
    auto oracle = BruteForceEnumerate(*data, p, cs);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(*matches, *oracle) << name;
    std::remove(path.c_str());
  }
}

TEST(ResultWriterTest, CompressedFileIsSmallerThanPlain) {
  auto data = GenerateBarabasiAlbert(150, 5, 9);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("q7")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(6), cs);
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());

  const std::string plain_path = TempPath("size_plain.benur");
  WriteResults(*plan, *data, plain_path);
  ExecutionPlan compressed = *plan;
  ASSERT_TRUE(ApplyVcbcCompression(&compressed).ok());
  const std::string compressed_path = TempPath("size_compressed.benur");
  WriteResults(compressed, *data, compressed_path);

  auto plain_info = ReadResultFile(plain_path);
  auto compressed_info = ReadResultFile(compressed_path);
  ASSERT_TRUE(plain_info.ok());
  ASSERT_TRUE(compressed_info.ok());
  EXPECT_EQ(plain_info->matches, compressed_info->matches);
  EXPECT_LT(compressed_info->payload_bytes, plain_info->payload_bytes);
  std::remove(plain_path.c_str());
  std::remove(compressed_path.c_str());
}

TEST(ResultWriterTest, RejectsGarbageAndTruncation) {
  const std::string garbage = TempPath("garbage.benur");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "definitely not a result file";
  }
  EXPECT_FALSE(ReadResultFile(garbage).ok());
  std::remove(garbage.c_str());

  // Valid file truncated mid-record.
  auto data = GenerateErdosRenyi(20, 60, 1);
  ASSERT_TRUE(data.ok());
  Graph p = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(3), cs);
  ASSERT_TRUE(plan.ok());
  const std::string path = TempPath("truncate.benur");
  WriteResults(*plan, *data, path);
  auto info = ReadResultFile(path);
  ASSERT_TRUE(info.ok());
  if (info->matches > 0) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 2));
    out.close();
    EXPECT_FALSE(ReadResultFile(path).ok());
  }
  std::remove(path.c_str());
}

TEST(ResultWriterTest, MissingDirectoryFails) {
  Graph p = MakeClique(3);
  auto plan = GenerateRawPlan(p, Identity(3), {});
  ASSERT_TRUE(plan.ok());
  auto writer = ResultFileWriter::Open("/nonexistent/dir/out.benur", *plan);
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace benu
