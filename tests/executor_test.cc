#include "core/executor.h"

#include <gtest/gtest.h>

#include "baselines/bruteforce.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "plan/optimizer.h"
#include "plan/plan_generator.h"
#include "plan/plan_search.h"
#include "plan/symmetry_breaking.h"
#include "plan/vcbc.h"

namespace benu {
namespace {

std::vector<VertexId> Identity(size_t n) {
  std::vector<VertexId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<VertexId>(i);
  return order;
}

// Runs `plan` over every start vertex with the direct provider and
// returns the total expanded match count.
Count RunAllTasks(const ExecutionPlan& plan, const Graph& data) {
  DirectAdjacencyProvider provider(&data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan, &provider, &tcache);
  EXPECT_TRUE(executor.ok()) << executor.status().ToString();
  CountingConsumer consumer(plan);
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
  }
  return consumer.matches();
}

TEST(ExecutorTest, TriangleOnDemoGraph) {
  // Fig. 1b's data graph has a known shape; use a simple one instead:
  // K4 contains 4 triangles.
  Graph data = MakeClique(4);
  Graph triangle = MakeClique(3);
  auto cs = ComputeSymmetryBreakingConstraints(triangle);
  auto plan = GenerateRawPlan(triangle, Identity(3), cs);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(RunAllTasks(*plan, data), 4u);
}

TEST(ExecutorTest, SquareOnCycleGraph) {
  // C8 contains no 4-cycles; C4 contains exactly one.
  Graph square = MakeCycle(4);
  auto cs = ComputeSymmetryBreakingConstraints(square);
  auto plan = GenerateRawPlan(square, Identity(4), cs);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(RunAllTasks(*plan, MakeCycle(8)), 0u);
  EXPECT_EQ(RunAllTasks(*plan, MakeCycle(4)), 1u);
}

TEST(ExecutorTest, RawPlanMatchesBruteForceOnRandomGraphs) {
  auto data = GenerateErdosRenyi(60, 240, 17);
  ASSERT_TRUE(data.ok());
  for (const std::string name :
       {"triangle", "square", "diamond", "clique4", "q1", "q3", "q5"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
    ASSERT_TRUE(plan.ok()) << name;
    auto expected = BruteForceCount(*data, p, cs);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(RunAllTasks(*plan, *data), *expected) << name;
  }
}

TEST(ExecutorTest, OptimizedPlanMatchesRawPlan) {
  auto data = GenerateBarabasiAlbert(150, 4, 23);
  ASSERT_TRUE(data.ok());
  Graph relabeled = data->RelabelByDegree();
  for (const std::string& name : AllPatternNames()) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto raw = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
    ASSERT_TRUE(raw.ok()) << name;
    ExecutionPlan optimized = *raw;
    OptimizePlan(&optimized);
    EXPECT_EQ(RunAllTasks(*raw, relabeled), RunAllTasks(optimized, relabeled))
        << name;
  }
}

TEST(ExecutorTest, CompressedPlanCountsMatchUncompressed) {
  auto data = GenerateBarabasiAlbert(120, 4, 31);
  ASSERT_TRUE(data.ok());
  Graph relabeled = data->RelabelByDegree();
  for (const std::string& name : AllPatternNames()) {
    Graph p = std::move(GetPattern(name)).value();
    auto cs = ComputeSymmetryBreakingConstraints(p);
    auto plan = GenerateRawPlan(p, Identity(p.NumVertices()), cs);
    ASSERT_TRUE(plan.ok()) << name;
    OptimizePlan(&plan.value());
    Count uncompressed = RunAllTasks(*plan, relabeled);
    ExecutionPlan compressed = *plan;
    ASSERT_TRUE(ApplyVcbcCompression(&compressed).ok()) << name;
    EXPECT_EQ(RunAllTasks(compressed, relabeled), uncompressed) << name;
  }
}

TEST(ExecutorTest, BestPlanMatchesBruteForce) {
  auto data = GenerateErdosRenyi(70, 350, 5);
  ASSERT_TRUE(data.ok());
  Graph relabeled = data->RelabelByDegree();
  for (const std::string name : {"q2", "q4", "q6", "q7", "q8", "q9"}) {
    Graph p = std::move(GetPattern(name)).value();
    auto result = GenerateBestPlan(p, DataGraphStats::FromGraph(relabeled));
    ASSERT_TRUE(result.ok()) << name;
    auto expected = BruteForceCountSubgraphs(relabeled, p);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(RunAllTasks(result->plan, relabeled), *expected) << name;
  }
}

TEST(ExecutorTest, CollectingConsumerProducesValidSubgraphMatches) {
  auto data = GenerateErdosRenyi(30, 90, 3);
  ASSERT_TRUE(data.ok());
  Graph p = std::move(GetPattern("diamond")).value();
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(4), cs);
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());

  DirectAdjacencyProvider provider(&*data);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&plan.value(), &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  CollectingConsumer consumer(*plan);
  for (VertexId v = 0; v < data->NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &consumer);
  }
  auto expected = BruteForceEnumerate(*data, p, cs);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(consumer.Sorted(), *expected);
  // Every reported match is an edge-preserving injective mapping.
  for (const auto& f : consumer.matches()) {
    for (const auto& [u, v] : p.Edges()) {
      EXPECT_TRUE(data->HasEdge(f[u], f[v]));
    }
  }
}

TEST(ExecutorTest, SubtaskSlicesPartitionTheWork) {
  auto data = GenerateBarabasiAlbert(200, 5, 7);
  ASSERT_TRUE(data.ok());
  Graph relabeled = data->RelabelByDegree();
  Graph p = std::move(GetPattern("triangle")).value();
  auto result = GenerateBestPlan(p, DataGraphStats::FromGraph(relabeled));
  ASSERT_TRUE(result.ok());

  DirectAdjacencyProvider provider(&relabeled);
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&result->plan, &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  // Whole tasks vs 4-way split tasks must agree.
  CountingConsumer whole(result->plan);
  CountingConsumer split(result->plan);
  for (VertexId v = 0; v < relabeled.NumVertices(); ++v) {
    (*executor)->RunTask(SearchTask{v, 0, 1}, &whole);
    for (uint32_t s = 0; s < 4; ++s) {
      (*executor)->RunTask(SearchTask{v, s, 4}, &split);
    }
  }
  EXPECT_EQ(whole.matches(), split.matches());
}

TEST(ExecutorTest, CachedProviderReportsHitsAndQueries) {
  Graph data = MakeClique(6).RelabelByDegree();
  Graph p = std::move(GetPattern("triangle")).value();
  auto result = GenerateBestPlan(p, DataGraphStats::FromGraph(data));
  ASSERT_TRUE(result.ok());

  DistributedKvStore store(data, 2);
  DbCache cache(&store, 1 << 20);
  CachedAdjacencyProvider provider(&cache, data.NumVertices());
  TriangleCache tcache;
  auto executor = PlanExecutor::Create(&result->plan, &provider, &tcache);
  ASSERT_TRUE(executor.ok());
  CountingConsumer consumer(result->plan);
  TaskStats totals;
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    totals.Accumulate((*executor)->RunTask(SearchTask{v, 0, 1}, &consumer));
  }
  EXPECT_EQ(consumer.matches(), 20u);  // C(6,3) triangles in K6
  EXPECT_EQ(totals.adjacency_requests, totals.cache_hits + totals.db_queries);
  EXPECT_GT(totals.cache_hits, 0u);
  EXPECT_LE(totals.db_queries, data.NumVertices());
  EXPECT_EQ(store.stats().queries.load(), totals.db_queries);
}

TEST(ExecutorTest, DirectProviderIsZeroCopy) {
  // The direct provider must not duplicate the graph: fetched views alias
  // the graph's CSR storage, and no owning pointer is handed out.
  Graph data = MakeClique(6);
  DirectAdjacencyProvider provider(&data);
  for (VertexId v = 0; v < data.NumVertices(); ++v) {
    AdjacencyProvider::Fetch fetch = provider.GetAdjacency(v);
    const VertexSetView direct = data.Adjacency(v);
    EXPECT_EQ(fetch.view.data, direct.data) << "copied adjacency of " << v;
    EXPECT_EQ(fetch.view.size, direct.size);
    EXPECT_EQ(fetch.set, nullptr);
    EXPECT_TRUE(fetch.cache_hit);
    EXPECT_EQ(fetch.bytes, 0u);
  }
}

TEST(ExecutorTest, CachedProviderViewAliasesOwnedPayload) {
  Graph data = MakeClique(5);
  DistributedKvStore store(data, 4);
  DbCache cache(&store, 1u << 20);
  CachedAdjacencyProvider provider(&cache, data.NumVertices());
  AdjacencyProvider::Fetch fetch = provider.GetAdjacency(2);
  ASSERT_NE(fetch.set, nullptr);
  EXPECT_EQ(fetch.view.data, fetch.set->data());
  EXPECT_EQ(fetch.view.size, fetch.set->size());
}

TEST(ExecutorTest, CreateRejectsTrcWithoutCache) {
  Graph p = MakeClique(4);
  auto cs = ComputeSymmetryBreakingConstraints(p);
  auto plan = GenerateRawPlan(p, Identity(4), cs);
  ASSERT_TRUE(plan.ok());
  OptimizePlan(&plan.value());
  Graph data = MakeClique(5);
  DirectAdjacencyProvider provider(&data);
  auto executor = PlanExecutor::Create(&plan.value(), &provider, nullptr);
  EXPECT_FALSE(executor.ok());
}

}  // namespace
}  // namespace benu
