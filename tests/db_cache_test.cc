#include "storage/db_cache.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.h"
#include "graph/generators.h"
#include "graph/patterns.h"

namespace benu {
namespace {

TEST(DbCacheTest, SecondFetchHits) {
  Graph g = MakeCycle(5);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 1 << 20, /*num_shards=*/1);
  bool hit = true;
  cache.GetAdjacency(2, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(store.stats().queries.load(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DbCacheTest, ReturnsCorrectSets) {
  Graph g = MakeStar(4);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 1 << 20);
  EXPECT_EQ(*cache.GetAdjacency(0), (VertexSet{1, 2, 3, 4}));
  EXPECT_EQ(*cache.GetAdjacency(3), (VertexSet{0}));
  // Cached copies stay correct.
  EXPECT_EQ(*cache.GetAdjacency(0), (VertexSet{1, 2, 3, 4}));
}

TEST(DbCacheTest, ZeroCapacityNeverCaches) {
  Graph g = MakeCycle(4);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 0);
  bool hit = true;
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(store.stats().queries.load(), 2u);
  EXPECT_EQ(cache.SizeBytes(), 0u);
}

TEST(DbCacheTest, LruEvictsColdEntries) {
  // Capacity for roughly two entries in one shard.
  Graph g = MakeCycle(8);  // every adjacency has 2 entries
  DistributedKvStore store(g, 1);
  const size_t entry_bytes = 2 * sizeof(VertexId) + 32;
  DbCache cache(&store, 2 * entry_bytes, /*num_shards=*/1);
  bool hit = false;
  cache.GetAdjacency(0, &hit);
  cache.GetAdjacency(1, &hit);
  cache.GetAdjacency(0, &hit);  // refresh 0: LRU order is [0, 1]
  EXPECT_TRUE(hit);
  cache.GetAdjacency(2, &hit);  // evicts 1
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(0, &hit);  // wait: inserting 1 evicted 0? LRU [2,1]
  // After inserting 2 the set is {0,2}; fetching 1 evicts 0.
  EXPECT_FALSE(hit);
}

TEST(DbCacheTest, CapacityBoundRespected) {
  auto g = GenerateBarabasiAlbert(500, 4, 9);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 1);
  const size_t capacity = 4096;
  DbCache cache(&store, capacity, 4);
  for (VertexId v = 0; v < g->NumVertices(); ++v) cache.GetAdjacency(v);
  EXPECT_LE(cache.SizeBytes(), capacity);
}

TEST(DbCacheTest, OversizedEntryNotRetained) {
  Graph g = MakeStar(100);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 64, 1);  // hub set (400B) exceeds shard capacity
  bool hit = true;
  cache.GetAdjacency(0, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(0, &hit);
  EXPECT_FALSE(hit);  // still not cached
}

TEST(DbCacheTest, ConcurrentAccessIsSafeAndComplete) {
  auto g = GenerateBarabasiAlbert(300, 3, 4);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  DbCache cache(&store, 1 << 20, 8);
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      for (VertexId v = 0; v < g->NumVertices(); ++v) {
        auto set = cache.GetAdjacency(v);
        VertexSetView expected = g->Adjacency(v);
        if (set->size() != expected.size) mismatches.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            4 * g->NumVertices());
}

}  // namespace
}  // namespace benu
