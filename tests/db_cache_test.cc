#include "storage/db_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/adj_codec.h"
#include "graph/generators.h"
#include "graph/patterns.h"
#include "storage/transport.h"

namespace benu {
namespace {

TEST(DbCacheStatsTest, HitRateCountsCoalescedWaitsAsNonHits) {
  // The one hit-rate convention (header doc): a hit is a lookup served
  // without waiting on any store round trip. A coalesced lookup waited a
  // full (shared) round trip, so it counts in the denominator only.
  DbCacheStats stats;
  stats.hits = 1;
  stats.misses = 1;
  stats.coalesced = 2;
  EXPECT_EQ(stats.Lookups(), 4u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.25);
  EXPECT_DOUBLE_EQ(stats.StallRate(), 0.75);
  EXPECT_DOUBLE_EQ(stats.HitRate() + stats.StallRate(), 1.0);
}

TEST(DbCacheStatsTest, EmptyStatsHaveZeroRates) {
  DbCacheStats stats;
  EXPECT_EQ(stats.Lookups(), 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.StallRate(), 0.0);
}

TEST(DbCacheTest, SecondFetchHits) {
  Graph g = MakeCycle(5);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 1 << 20, /*num_shards=*/1);
  bool hit = true;
  cache.GetAdjacency(2, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(store.stats().queries.load(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DbCacheTest, ReturnsCorrectSets) {
  Graph g = MakeStar(4);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 1 << 20);
  EXPECT_EQ(*cache.GetAdjacency(0), (VertexSet{1, 2, 3, 4}));
  EXPECT_EQ(*cache.GetAdjacency(3), (VertexSet{0}));
  // Cached copies stay correct.
  EXPECT_EQ(*cache.GetAdjacency(0), (VertexSet{1, 2, 3, 4}));
}

TEST(DbCacheTest, ZeroCapacityNeverCaches) {
  Graph g = MakeCycle(4);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 0);
  bool hit = true;
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(store.stats().queries.load(), 2u);
  EXPECT_EQ(cache.SizeBytes(), 0u);
}

TEST(DbCacheTest, LruEvictsColdEntries) {
  // Capacity for roughly two entries in one shard.
  Graph g = MakeCycle(8);  // every adjacency has 2 entries
  DistributedKvStore store(g, 1);
  const size_t entry_bytes = 2 * sizeof(VertexId) + 32;
  DbCache cache(&store, 2 * entry_bytes, /*num_shards=*/1);
  bool hit = false;
  cache.GetAdjacency(0, &hit);
  cache.GetAdjacency(1, &hit);
  cache.GetAdjacency(0, &hit);  // refresh 0: LRU order is [0, 1]
  EXPECT_TRUE(hit);
  cache.GetAdjacency(2, &hit);  // evicts 1
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(0, &hit);  // wait: inserting 1 evicted 0? LRU [2,1]
  // After inserting 2 the set is {0,2}; fetching 1 evicts 0.
  EXPECT_FALSE(hit);
}

TEST(DbCacheTest, CapacityBoundRespected) {
  auto g = GenerateBarabasiAlbert(500, 4, 9);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 1);
  const size_t capacity = 4096;
  DbCache cache(&store, capacity, 4);
  for (VertexId v = 0; v < g->NumVertices(); ++v) cache.GetAdjacency(v);
  EXPECT_LE(cache.SizeBytes(), capacity);
}

TEST(DbCacheTest, OversizedEntryNotRetained) {
  Graph g = MakeStar(100);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 64, 1);  // hub set (400B) exceeds shard capacity
  bool hit = true;
  cache.GetAdjacency(0, &hit);
  EXPECT_FALSE(hit);
  cache.GetAdjacency(0, &hit);
  EXPECT_FALSE(hit);  // still not cached
}

TEST(DbCacheTest, CompressedEntriesChargedAtEncodedSize) {
  // On a compressed transport the cache stores the still-encoded payload
  // and charges capacity by its *encoded* size, so the same budget holds
  // ~compression-ratio more adjacency sets. The hub set of a star is
  // delta-1 runs — one varint byte per vertex vs 4 raw bytes.
  if (!codec::CompressionEnabled(true)) {
    GTEST_SKIP() << "BENU_DISABLE_COMPRESSION is set; nothing to charge";
  }
  Graph g = MakeStar(512);
  DistributedKvStore raw_store(g, 1);  // convenience ctor: raw payloads
  DbCache raw_cache(&raw_store, 1 << 20, 1);
  DistributedKvStore comp_store(MakeSimulatedTransport(g, 1));
  DbCache comp_cache(&comp_store, 1 << 20, 1);

  EXPECT_EQ(*comp_cache.GetAdjacency(0), *raw_cache.GetAdjacency(0));
  EXPECT_GT(comp_cache.SizeBytes(), 0u);
  EXPECT_LT(comp_cache.SizeBytes() * 3, raw_cache.SizeBytes());
  // A cached compressed entry keeps serving the right set.
  EXPECT_EQ(*comp_cache.GetAdjacency(0), *raw_cache.GetAdjacency(0));
}

TEST(DbCacheTest, ResidentBytesGaugeTracksLiveCaches) {
  auto* gauge = metrics::MetricsRegistry::Global().GetGauge(
      "db_cache.resident_bytes", "bytes");
  const double before = gauge->Value();
  Graph g = MakeCycle(16);
  DistributedKvStore store(g, 1);
  {
    DbCache cache(&store, 1 << 20, 2);
    for (VertexId v = 0; v < 16; ++v) cache.GetAdjacency(v);
    EXPECT_DOUBLE_EQ(gauge->Value() - before,
                     static_cast<double>(cache.SizeBytes()));
  }
  // Destruction un-counts the cache's surviving entries.
  EXPECT_DOUBLE_EQ(gauge->Value(), before);
}

TEST(DbCacheTest, PrefetchAccountingIdentity) {
  // Sync prefetch (null fetch pool) is deterministic: every prefetched
  // key lands exactly once in hits / claimed / wasted / still-resident,
  // and a prefetched entry's first touch converts to prefetch_hits
  // exactly once — no drift between the issued and settled counts.
  Graph g = MakeCycle(64);
  DistributedKvStore store(g, 4);
  DbCache cache(&store, 1 << 20, 1);
  std::vector<VertexId> keys;
  for (VertexId v = 0; v < 32; ++v) keys.push_back(v);
  cache.PrefetchAsync(keys.data(), keys.size());
  cache.WaitForPrefetches();
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetches_issued, 32u);
  EXPECT_EQ(stats.prefetch_claimed, 0u);
  EXPECT_EQ(stats.prefetch_wasted, 0u);

  bool hit = false;
  for (VertexId v = 0; v < 32; ++v) {
    cache.GetAdjacency(v, &hit);
    EXPECT_TRUE(hit) << v;
  }
  stats = cache.stats();
  EXPECT_EQ(stats.prefetch_hits, 32u);
  EXPECT_EQ(stats.hits, 32u);
  EXPECT_EQ(stats.misses, 0u);
  // Re-touching a prefetched entry is a plain hit: no double count.
  cache.GetAdjacency(0, &hit);
  EXPECT_EQ(cache.stats().prefetch_hits, 32u);
  // Re-prefetching cached keys issues nothing.
  cache.PrefetchAsync(keys.data(), keys.size());
  cache.WaitForPrefetches();
  EXPECT_EQ(cache.stats().prefetches_issued, 32u);
}

TEST(DbCacheTest, EvictedPrefetchesCountAsWasted) {
  Graph g = MakeCycle(64);  // every adjacency: 2 ids = 8 raw bytes
  DistributedKvStore store(g, 1);
  const size_t entry_bytes = 2 * sizeof(VertexId) + 32;
  DbCache cache(&store, 2 * entry_bytes, 1);  // room for two entries
  std::vector<VertexId> keys;
  for (VertexId v = 0; v < 16; ++v) keys.push_back(v);
  cache.PrefetchAsync(keys.data(), keys.size());
  cache.WaitForPrefetches();
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.prefetches_issued, 16u);
  // At most two prefetched entries can still be resident; every other
  // one was evicted without a hit and must be settled as wasted.
  EXPECT_GE(stats.prefetch_wasted, 14u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
}

TEST(DbCacheTest, ConcurrentAccessIsSafeAndComplete) {
  auto g = GenerateBarabasiAlbert(300, 3, 4);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  DbCache cache(&store, 1 << 20, 8);
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      for (VertexId v = 0; v < g->NumVertices(); ++v) {
        auto set = cache.GetAdjacency(v);
        VertexSetView expected = g->Adjacency(v);
        if (set->size() != expected.size) mismatches.fetch_add(1);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(mismatches.load(), 0);
  // Every lookup lands in exactly one stats bucket.
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            4 * g->NumVertices());
}

TEST(DbCacheTest, SingleFlightOneStoreQueryPerDistinctMiss) {
  // With a capacity that never evicts, the store must see exactly one
  // query per distinct key no matter how many threads race on it:
  // whichever thread wins the flight queries, everyone else either
  // coalesces onto the in-flight query or hits the inserted entry.
  auto g = GenerateBarabasiAlbert(400, 4, 17);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  DbCache cache(&store, 256u << 20, 8);
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&] {
      for (int r = 0; r < kRounds; ++r) {
        for (VertexId v = 0; v < g->NumVertices(); ++v) {
          cache.GetAdjacency(v);
        }
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(store.stats().queries.load(), g->NumVertices());
  DbCacheStats stats = cache.stats();
  // Primary misses are the only lookups that reach the store.
  EXPECT_EQ(stats.misses, store.stats().queries.load());
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<Count>(kThreads) * kRounds * g->NumVertices());
}

TEST(DbCacheTest, ConcurrentPowerLawStressRespectsCapacity) {
  // Concurrent hits, misses and evictions on a power-law key
  // distribution; a sampler thread asserts the byte bound throughout
  // (each shard enforces its slice of the capacity under its lock, so
  // the bound holds at every instant, not only at quiescence).
  auto g = GenerateBarabasiAlbert(600, 5, 23);
  ASSERT_TRUE(g.ok());
  DistributedKvStore store(*g, 4);
  const size_t capacity = 16 << 10;  // small: constant eviction pressure
  DbCache cache(&store, capacity, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> done{false};
  std::atomic<int> bound_violations{0};
  std::atomic<int> mismatches{0};
  std::thread sampler([&] {
    while (!done.load()) {
      if (cache.SizeBytes() > capacity) bound_violations.fetch_add(1);
    }
  });
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&, t] {
        Rng rng(1000 + t);
        for (int i = 0; i < kOpsPerThread; ++i) {
          // Cubing the uniform draw skews the keys toward the low ids,
          // which after RelabelByDegree-style generation are a small hot
          // set — the power-law access pattern of a real run.
          const double u = rng.NextDouble();
          const auto v = static_cast<VertexId>(
              static_cast<double>(g->NumVertices() - 1) * u * u * u);
          auto set = cache.GetAdjacency(v);
          if (set->size() != g->Adjacency(v).size) mismatches.fetch_add(1);
        }
      });
    }
    pool.Wait();
  }
  done.store(true);
  sampler.join();
  EXPECT_EQ(bound_violations.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.SizeBytes(), capacity);
  DbCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<Count>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.misses, store.stats().queries.load());
  EXPECT_GT(stats.hits, 0u);
  // The aggregated rates obey the documented convention under load:
  // every coalesced wait degrades the hit rate.
  EXPECT_DOUBLE_EQ(stats.HitRate(),
                   static_cast<double>(stats.hits) / stats.Lookups());
  EXPECT_DOUBLE_EQ(stats.HitRate() + stats.StallRate(), 1.0);
}

// --- epoch invalidation ------------------------------------------------

// A store whose fetches can be held at a gate, so a test can interleave
// an epoch advance *inside* an in-flight fetch deterministically. The
// served value versions with `BumpValue` (standing in for the versioned
// store's overlay changing across epochs) and is captured BEFORE the
// gate — exactly a reply formed under the old snapshot arriving late.
class GatedStore : public DistributedKvStore {
 public:
  explicit GatedStore(const Graph& g) : DistributedKvStore(g, 1) {}

  AdjacencyPayload GetAdjacency(VertexId v) const override {
    const auto captured = static_cast<VertexId>(value_.load());
    fetches_started_.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !gated_; });
    }
    AdjacencyPayload payload;
    payload.decoded = std::make_shared<VertexSet>(VertexSet{captured});
    payload.wire_bytes = ReplyBytes(1);
    (void)v;
    return payload;
  }

  BatchReply GetAdjacencyBatch(
      std::span<const VertexId> keys) const override {
    BatchReply reply;
    for (VertexId v : keys) reply.values.push_back(GetAdjacency(v));
    reply.round_trips = 1;
    reply.bytes = keys.size() * ReplyBytes(1);
    return reply;
  }

  void Gate() {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gated_ = false;
    }
    cv_.notify_all();
  }
  void BumpValue() { value_.fetch_add(1); }
  int fetches_started() const { return fetches_started_.load(); }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool gated_ = false;
  std::atomic<int> value_{1};
  mutable std::atomic<int> fetches_started_{0};
};

void SpinUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 50000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(pred());
}

TEST(DbCacheEpochTest, AdvanceEpochInvalidatesTouchedEntriesOnly) {
  Graph g = MakeCycle(6);
  DistributedKvStore store(g, 1);
  DbCache cache(&store, 1 << 20, /*num_shards=*/1);
  for (VertexId v = 0; v < 4; ++v) cache.Get(v);
  ASSERT_EQ(cache.stats().misses, 4u);

  const VertexId touched[] = {1, 2};
  cache.AdvanceEpoch(1, touched);
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.stats().epoch_invalidations, 2u);

  bool hit = false;
  cache.GetAdjacency(0, &hit);
  EXPECT_TRUE(hit);  // untouched entries stay hot
  cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);  // touched entries were purged precisely
  cache.GetAdjacency(3, &hit);
  EXPECT_TRUE(hit);
}

TEST(DbCacheEpochTest, FetchRacingEpochAdvanceNeverPublishesStale) {
  // A fetch in flight when the epoch advances must not be served: the
  // primary's refetch loop re-queries under the new epoch, so the caller
  // observes the post-advance value even though the first reply (formed
  // under the old snapshot) arrived after the advance.
  Graph g = MakeCycle(4);
  GatedStore store(g);
  DbCache cache(&store, 1 << 20, /*num_shards=*/1);

  store.Gate();
  std::shared_ptr<const VertexSet> result;
  std::thread getter([&] { result = cache.Get(2).value.Materialize(); });
  SpinUntil([&] { return store.fetches_started() >= 1; });

  // The gated fetch already captured the old value {1}; change the
  // store and advance the epoch while that reply is still in flight.
  store.BumpValue();
  const VertexId touched[] = {2};
  cache.AdvanceEpoch(1, touched);
  store.Release();
  getter.join();

  // The getter saw the new-epoch value {2}, never the stale {1}.
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, (VertexSet{2}));
  EXPECT_GE(store.fetches_started(), 2);  // the refetch actually happened
  // And the retained entry is the new-epoch value too.
  EXPECT_EQ(*cache.Get(2).value.Materialize(), (VertexSet{2}));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(DbCacheEpochTest, StalePrefetchCountsAsWastedAndIsDropped) {
  Graph g = MakeCycle(4);
  GatedStore store(g);
  ThreadPool pool(1);
  DbCache cache(&store, 1 << 20, /*num_shards=*/1, &pool);

  store.Gate();
  const VertexId key = 1;
  cache.PrefetchAsync(&key, 1);
  SpinUntil([&] { return store.fetches_started() >= 1; });
  store.BumpValue();
  const VertexId touched[] = {1};
  cache.AdvanceEpoch(1, touched);
  store.Release();
  cache.WaitForPrefetches();
  // The prefetched payload was fetched at epoch 0: it lands as wasted
  // work, not as a cache entry of epoch 1.
  EXPECT_EQ(cache.stats().prefetch_wasted, 1u);
  bool hit = true;
  auto set = cache.GetAdjacency(1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(*set, (VertexSet{2}));  // fetched fresh at the new epoch
}

}  // namespace
}  // namespace benu
