#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace benu {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  auto g = GenerateErdosRenyi(100, 250, 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 100u);
  EXPECT_EQ(g->NumEdges(), 250u);
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  auto a = GenerateErdosRenyi(50, 100, 7);
  auto b = GenerateErdosRenyi(50, 100, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(ErdosRenyiTest, DifferentSeedsDiffer) {
  auto a = GenerateErdosRenyi(50, 100, 7);
  auto b = GenerateErdosRenyi(50, 100, 8);
  EXPECT_FALSE(*a == *b);
}

TEST(ErdosRenyiTest, RejectsOverfullGraph) {
  EXPECT_FALSE(GenerateErdosRenyi(3, 4, 1).ok());
}

TEST(BarabasiAlbertTest, EdgeCountMatchesModel) {
  const size_t n = 500;
  const size_t m = 4;
  auto g = GenerateBarabasiAlbert(n, m, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), n);
  // Seed clique of m+1 vertices contributes C(m+1,2); every later vertex
  // adds exactly m edges.
  const size_t expected = (m + 1) * m / 2 + (n - (m + 1)) * m;
  EXPECT_EQ(g->NumEdges(), expected);
}

TEST(BarabasiAlbertTest, ProducesSkewedDegrees) {
  auto g = GenerateBarabasiAlbert(2000, 3, 5);
  ASSERT_TRUE(g.ok());
  // Power-law graphs have hubs far above the average degree (~6).
  EXPECT_GT(g->MaxDegree(), 40u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  auto a = GenerateBarabasiAlbert(300, 3, 11);
  auto b = GenerateBarabasiAlbert(300, 3, 11);
  EXPECT_TRUE(*a == *b);
}

TEST(BarabasiAlbertTest, RejectsTinyGraphs) {
  EXPECT_FALSE(GenerateBarabasiAlbert(2, 5, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(10, 0, 1).ok());
}

TEST(PowerLawClusterTest, MoreTrianglesThanPlainBa) {
  auto ba = GenerateBarabasiAlbert(2000, 5, 8);
  auto hk = GeneratePowerLawCluster(2000, 5, 0.7, 8);
  ASSERT_TRUE(ba.ok());
  ASSERT_TRUE(hk.ok());
  auto count_triangles = [](const Graph& g) {
    size_t count = 0;
    for (const auto& [u, v] : g.Edges()) {
      count += IntersectSize(g.Adjacency(u), g.Adjacency(v));
    }
    return count / 3;
  };
  EXPECT_GT(count_triangles(*hk), 3 * count_triangles(*ba));
}

TEST(PowerLawClusterTest, DeterministicAndSimple) {
  auto a = GeneratePowerLawCluster(500, 4, 0.5, 3);
  auto b = GeneratePowerLawCluster(500, 4, 0.5, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_EQ(a->NumVertices(), 500u);
  // Roughly m edges per non-seed vertex (attempt cap may drop a few).
  EXPECT_GE(a->NumEdges(), 495u * 4u * 9 / 10);
}

TEST(PowerLawClusterTest, HeavyTailedDegrees) {
  // The hubs that motivate task splitting: the maximum degree dwarfs the
  // median.
  auto g = GeneratePowerLawCluster(5000, 6, 0.6, 17);
  ASSERT_TRUE(g.ok());
  std::vector<size_t> degrees;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    degrees.push_back(g->Degree(v));
  }
  std::nth_element(degrees.begin(), degrees.begin() + degrees.size() / 2,
                   degrees.end());
  const size_t median = degrees[degrees.size() / 2];
  EXPECT_GT(g->MaxDegree(), 10 * median);
}

TEST(PowerLawClusterTest, RejectsBadParameters) {
  EXPECT_FALSE(GeneratePowerLawCluster(3, 5, 0.5, 1).ok());
  EXPECT_FALSE(GeneratePowerLawCluster(10, 0, 0.5, 1).ok());
}

TEST(RandomConnectedTest, AlwaysConnected) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto g = GenerateRandomConnected(8, 0.3, seed);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->IsConnected());
    EXPECT_EQ(g->NumVertices(), 8u);
    EXPECT_GE(g->NumEdges(), 7u);  // at least the spanning tree
  }
}

TEST(RandomConnectedTest, ZeroExtraProbabilityGivesTree) {
  auto g = GenerateRandomConnected(10, 0.0, 2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 9u);
}

TEST(StandInDatasetTest, KnownNamesResolve) {
  for (const char* name : {"as-sim", "lj-sim", "ok-sim"}) {
    auto g = GenerateStandInDataset(name);
    ASSERT_TRUE(g.ok()) << name;
    EXPECT_GT(g->NumVertices(), 1000u);
  }
}

TEST(StandInDatasetTest, UnknownNameFails) {
  EXPECT_EQ(GenerateStandInDataset("twitter").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace benu
